package linalg

import (
	"fmt"
	"math"
)

// Reduced-precision kernel path. Matrix32 mirrors Matrix in float32: half
// the memory traffic per element, which is what the training hot path is
// bound by once gradients are batched. The float32 kernels are free of the
// bit-exactness contract the float64 kernels carry — float64 stays the
// parity reference — so their inner loops unroll into multiple independent
// accumulators (the compiler keeps them in registers) and tile the inner
// dimension like the float64 MatMul. They are still deterministic: the
// accumulation schedule is fixed and fan-out is across output rows, so any
// worker count produces identical bits run to run.

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows int
	Cols int
	Data []float32
}

// NewMatrix32 allocates a zero float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns the r-th row as a shared slice.
func (m *Matrix32) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// At returns the element at (r, c).
func (m *Matrix32) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Matrix32From converts a float64 matrix to float32 (fresh storage).
func Matrix32From(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	Convert32(out.Data, m.Data)
	return out
}

// Convert32 narrows src into dst element-wise. Lengths must match.
func Convert32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: convert length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Dot32 returns the float32 inner product of a and b, accumulated in four
// independent lanes (reassociation is allowed off the parity path; the
// lane split is fixed, so results are deterministic).
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4], b[i:i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy32 computes dst += s·src element-wise.
func Axpy32(dst, src []float32, s float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += s * src[i]
	}
}

// axpyInit32 writes dst = s·src element-wise (overwrite-init; the float32
// path has no -0.0 parity obligation to preserve).
func axpyInit32(dst, src []float32, s float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] = s * src[i]
	}
}

// Zero32 clears v in place.
func Zero32(v []float32) {
	for i := range v {
		v[i] = 0
	}
}

// MatMul32 returns C = A·B in float32, cache-blocked over the inner
// dimension exactly like the float64 MatMul (i-k-j with blockK tiling, so
// B streams forward through the cache at twice the rows per line).
func MatMul32(a, b *Matrix32) *Matrix32 {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix32(a.Rows, b.Cols)
	MatMul32Into(a, b, c)
	return c
}

// MatMul32Into is MatMul32 writing into a caller-owned c (overwritten).
func MatMul32Into(a, b, c *Matrix32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: matmul output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			cRow := c.Row(i)
			axpyInit32(cRow, b.Row(0), aRow[0])
			for k0 := 1; k0 < a.Cols; k0 += blockK {
				k1 := k0 + blockK
				if k1 > a.Cols {
					k1 = a.Cols
				}
				for k := k0; k < k1; k++ {
					Axpy32(cRow, b.Row(k), aRow[k])
				}
			}
		}
	})
}

// AffineT32 returns C = A·Wᵀ + bias in float32, the reduced-precision
// batched affine layer.
func AffineT32(a, w *Matrix32, bias []float32) *Matrix32 {
	c := NewMatrix32(a.Rows, w.Rows)
	AffineT32Into(a, w, bias, c)
	return c
}

// AffineT32Into is AffineT32 writing into a caller-owned c. Like the
// float64 AffineTInto it tiles sample rows with the weight loop outermost,
// so W streams through memory once per affineTileRows samples instead of
// once per sample.
func AffineT32Into(a, w *Matrix32, bias []float32, c *Matrix32) {
	if a.Cols != w.Cols {
		panic(fmt.Sprintf("linalg: affineT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, w.Rows, w.Cols))
	}
	if len(bias) != w.Rows {
		panic(fmt.Sprintf("linalg: affineT bias length %d, want %d", len(bias), w.Rows))
	}
	if c.Rows != a.Rows || c.Cols != w.Rows {
		panic(fmt.Sprintf("linalg: affineT output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, w.Rows))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*w.Rows, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += affineTileRows {
			i1 := i0 + affineTileRows
			if i1 > hi {
				i1 = hi
			}
			for j := 0; j < w.Rows; j++ {
				wRow := w.Row(j)
				bj := bias[j]
				for i := i0; i < i1; i++ {
					c.Row(i)[j] = bj + Dot32(wRow, a.Row(i))
				}
			}
		}
	})
}

// MatTMul32Into computes C = Aᵀ·B into c — the float32 gradient kernel,
// shaped like MatTMulInto.
func MatTMul32Into(a, b, c *Matrix32) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: mattmul shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: mattmul output %dx%d, want %dx%d", c.Rows, c.Cols, a.Cols, b.Cols))
	}
	parallelRows(c.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			cRow := c.Row(j)
			axpyInit32(cRow, b.Row(0), a.At(0, j))
			for i := 1; i < a.Rows; i++ {
				Axpy32(cRow, b.Row(i), a.At(i, j))
			}
		}
	})
}

// ColSums32Into writes the per-column sums of a into dst (overwritten).
func ColSums32Into(a *Matrix32, dst []float32) {
	if len(dst) != a.Cols {
		panic(fmt.Sprintf("linalg: colsums length %d, want %d", len(dst), a.Cols))
	}
	axpyInit32(dst, a.Row(0), 1)
	for i := 1; i < a.Rows; i++ {
		Axpy32(dst, a.Row(i), 1)
	}
}

// ReLURows32 clamps every element of m to [0, ∞) in place.
func ReLURows32(m *Matrix32) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// ZeroWhereNonPos32 zeroes every element of m whose counterpart in gate is
// <= 0 — the float32 ReLU backward gate.
func ZeroWhereNonPos32(m, gate *Matrix32) {
	if m.Rows != gate.Rows || m.Cols != gate.Cols {
		panic(fmt.Sprintf("linalg: gate shape %dx%d, want %dx%d", gate.Rows, gate.Cols, m.Rows, m.Cols))
	}
	for i, g := range gate.Data {
		if g <= 0 {
			m.Data[i] = 0
		}
	}
}

// SoftmaxRows32 applies the softmax row-wise in place with the max-shift
// trick. Exponentials go through float64 math.Exp (there is no float32 exp
// in the stdlib); the row normalization stays float32.
func SoftmaxRows32(m *Matrix32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		if len(row) == 0 {
			continue
		}
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - maxV)))
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// SparseAffineT32Into computes C = A·Wᵀ + bias for a CSR A against float32
// weights, narrowing each stored value as it is consumed — the sparse
// first-layer forward of the reduced-precision training path.
func SparseAffineT32Into(a *SparseMatrix, w *Matrix32, bias []float32, c *Matrix32) {
	if a.Cols != w.Cols {
		panic(fmt.Sprintf("linalg: sparse affineT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, w.Rows, w.Cols))
	}
	if len(bias) != w.Rows {
		panic(fmt.Sprintf("linalg: sparse affineT bias length %d, want %d", len(bias), w.Rows))
	}
	if c.Rows != a.Rows || c.Cols != w.Rows {
		panic(fmt.Sprintf("linalg: sparse affineT output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, w.Rows))
	}
	avgNNZ := 0
	if a.Rows > 0 {
		avgNNZ = a.NNZ() / a.Rows
	}
	parallelRows(a.Rows, a.Rows*avgNNZ*w.Rows, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += affineTileRows {
			i1 := i0 + affineTileRows
			if i1 > hi {
				i1 = hi
			}
			for j := 0; j < w.Rows; j++ {
				wRow := w.Row(j)
				bj := bias[j]
				for i := i0; i < i1; i++ {
					cols, vals := a.RowNZ(i)
					sum := bj
					for k, col := range cols {
						sum += float32(vals[k]) * wRow[col]
					}
					c.Row(i)[j] = sum
				}
			}
		}
	})
}
