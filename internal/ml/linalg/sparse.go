package linalg

import "fmt"

// SparseMatrix is a CSR (compressed sparse row) matrix: row i's nonzeros
// are ColIdx[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], with
// column indices strictly ascending within each row. It is the substrate
// for bag-of-words feature batches, which are >95% zeros at the paper's
// 4096-feature vocabulary.
//
// Every kernel below accumulates along ascending column order — the same
// order the dense kernels walk — so sparse and dense scores agree bit for
// bit (a skipped zero term contributes exactly +0.0 to a dense sum).
type SparseMatrix struct {
	Rows int
	Cols int
	// RowPtr has Rows+1 entries; row i spans [RowPtr[i], RowPtr[i+1]).
	RowPtr []int
	// ColIdx holds the column of every nonzero, ascending within a row.
	ColIdx []int32
	// Val holds the nonzero values.
	Val []float64
}

// NewSparseMatrix allocates an empty CSR shell with capacity hints.
func NewSparseMatrix(rows, cols, nnzHint int) *SparseMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid sparse shape %dx%d", rows, cols))
	}
	return &SparseMatrix{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, 1, rows+1),
		ColIdx: make([]int32, 0, nnzHint),
		Val:    make([]float64, 0, nnzHint),
	}
}

// NNZ returns the stored nonzero count.
func (s *SparseMatrix) NNZ() int { return len(s.Val) }

// RowNZ returns row r's column indices and values as shared views.
func (s *SparseMatrix) RowNZ(r int) ([]int32, []float64) {
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	return s.ColIdx[lo:hi], s.Val[lo:hi]
}

// AppendRow closes out the next row, whose nonzeros (ascending columns)
// were appended to ColIdx/Val by the caller. It records the row boundary.
func (s *SparseMatrix) AppendRow() {
	s.RowPtr = append(s.RowPtr, len(s.Val))
}

// SparseFromDense converts a dense matrix to CSR, keeping every nonzero
// element (including negative values; only exact zeros are dropped).
func SparseFromDense(m *Matrix) *SparseMatrix {
	var nnz int
	for _, v := range m.Data {
		if v != 0 {
			nnz++
		}
	}
	s := NewSparseMatrix(m.Rows, m.Cols, nnz)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if v != 0 {
				s.ColIdx = append(s.ColIdx, int32(j))
				s.Val = append(s.Val, v)
			}
		}
		s.AppendRow()
	}
	return s
}

// ToDense scatters the CSR matrix into a freshly allocated dense matrix.
func (s *SparseMatrix) ToDense() *Matrix {
	m := NewMatrix(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		row := m.Row(i)
		cols, vals := s.RowNZ(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return m
}

// Clone returns a deep copy.
func (s *SparseMatrix) Clone() *SparseMatrix {
	out := &SparseMatrix{
		Rows:   s.Rows,
		Cols:   s.Cols,
		RowPtr: make([]int, len(s.RowPtr)),
		ColIdx: make([]int32, len(s.ColIdx)),
		Val:    make([]float64, len(s.Val)),
	}
	copy(out.RowPtr, s.RowPtr)
	copy(out.ColIdx, s.ColIdx)
	copy(out.Val, s.Val)
	return out
}

// GatherRows returns a new CSR matrix holding the given rows of s, in idx
// order — the fold-gather operation of cross-validation.
func (s *SparseMatrix) GatherRows(idx []int) *SparseMatrix {
	var nnz int
	for _, i := range idx {
		nnz += s.RowPtr[i+1] - s.RowPtr[i]
	}
	out := NewSparseMatrix(max(len(idx), 1), s.Cols, nnz)
	out.Rows = len(idx)
	for _, i := range idx {
		cols, vals := s.RowNZ(i)
		out.ColIdx = append(out.ColIdx, cols...)
		out.Val = append(out.Val, vals...)
		out.AppendRow()
	}
	return out
}

// GatherRowsInto is GatherRows reusing dst's backing slices — the
// per-minibatch gather of sparse training loops, allocation-free once dst
// has grown to the largest batch.
func (s *SparseMatrix) GatherRowsInto(idx []int, dst *SparseMatrix) {
	var nnz int
	for _, i := range idx {
		nnz += s.RowPtr[i+1] - s.RowPtr[i]
	}
	dst.Cols = s.Cols
	dst.Rows = len(idx)
	dst.RowPtr = append(dst.RowPtr[:0], 0)
	dst.ColIdx = dst.ColIdx[:0]
	if cap(dst.Val) < nnz {
		dst.ColIdx = make([]int32, 0, nnz)
		dst.Val = make([]float64, 0, nnz)
	}
	dst.Val = dst.Val[:0]
	for _, i := range idx {
		cols, vals := s.RowNZ(i)
		dst.ColIdx = append(dst.ColIdx, cols...)
		dst.Val = append(dst.Val, vals...)
		dst.AppendRow()
	}
}

// ScatterRow writes row r into dst, which must be zeroed (pair with
// ClearRow to reuse dst across rows without a full wipe).
func (s *SparseMatrix) ScatterRow(r int, dst []float64) {
	cols, vals := s.RowNZ(r)
	for k, c := range cols {
		dst[c] = vals[k]
	}
}

// ClearRow re-zeroes exactly the positions ScatterRow(r) wrote.
func (s *SparseMatrix) ClearRow(r int, dst []float64) {
	cols, _ := s.RowNZ(r)
	for _, c := range cols {
		dst[c] = 0
	}
}

// SparseDot returns Σ vals[k]·w[cols[k]], accumulating in ascending column
// order — bitwise what a dense ascending dot over the scattered row yields.
func SparseDot(cols []int32, vals []float64, w []float64) float64 {
	var sum float64
	for k, c := range cols {
		sum += vals[k] * w[c]
	}
	return sum
}

// SparseAxpy computes w[cols[k]] += s·vals[k] for every stored nonzero —
// the sparse Axpy of stochastic-gradient hinge steps. Identical in value
// to a dense Axpy on the scattered row: the skipped terms are exact-zero
// products, which add as identity on accumulators that are never -0.0.
func SparseAxpy(w []float64, cols []int32, vals []float64, s float64) {
	for k, c := range cols {
		w[c] += s * vals[k]
	}
}

// SparseAffineT returns C = A·Wᵀ + bias for a CSR A: row i of C is
// W·a_i + bias, computed as bias[j] + SparseDot(row, w_j) — the sparse
// analogue of AffineT, with identical per-cell accumulation order, so it
// reproduces the dense kernel bit for bit on the same logical matrix. Rows
// fan out over GOMAXPROCS goroutines when the work is large enough.
func SparseAffineT(a *SparseMatrix, w *Matrix, bias []float64) *Matrix {
	c := NewMatrix(a.Rows, w.Rows)
	SparseAffineTInto(a, w, bias, c)
	return c
}

// SparseAffineTInto is SparseAffineT writing into a caller-owned c. Like
// the dense AffineTInto it tiles sample rows with the weight loop
// outermost: a tile's column indices and values stay cache-resident while
// each W row is gathered against once per tile rather than once per
// sample. Per-cell accumulation (bias[j] + ascending-column SparseDot) is
// unchanged, so the tiled order produces identical bits.
func SparseAffineTInto(a *SparseMatrix, w *Matrix, bias []float64, c *Matrix) {
	if a.Cols != w.Cols {
		panic(fmt.Sprintf("linalg: sparse affineT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, w.Rows, w.Cols))
	}
	if len(bias) != w.Rows {
		panic(fmt.Sprintf("linalg: sparse affineT bias length %d, want %d", len(bias), w.Rows))
	}
	if c.Rows != a.Rows || c.Cols != w.Rows {
		panic(fmt.Sprintf("linalg: sparse affineT output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, w.Rows))
	}
	avgNNZ := 0
	if a.Rows > 0 {
		avgNNZ = a.NNZ() / a.Rows
	}
	parallelRows(a.Rows, a.Rows*avgNNZ*w.Rows, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += affineTileRows {
			i1 := i0 + affineTileRows
			if i1 > hi {
				i1 = hi
			}
			for j := 0; j < w.Rows; j++ {
				wRow := w.Row(j)
				bj := bias[j]
				for i := i0; i < i1; i++ {
					cols, vals := a.RowNZ(i)
					c.Row(i)[j] = bj + SparseDot(cols, vals, wRow)
				}
			}
		}
	})
}
