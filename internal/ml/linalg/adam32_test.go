package linalg

import (
	"math"
	"testing"
)

// stepGrads fills grads with a deterministic, step-dependent pattern.
func stepGrads(grads []float32, step int) {
	for i := range grads {
		grads[i] = float32(math.Sin(float64(i*37+step))) * 0.5
	}
}

// TestAdam32ShadowTracksMasters pins the fused shadow refresh: after every
// step, shadow[i] must be exactly float32(params[i]) — the working copy the
// next forward pass reads never drifts from the masters.
func TestAdam32ShadowTracksMasters(t *testing.T) {
	const size = 23
	adam, err := NewAdam32(size, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, size)
	shadow := make([]float32, size)
	Convert32(shadow, params)
	grads := make([]float32, size)
	for step := 0; step < 25; step++ {
		stepGrads(grads, step)
		adam.StepSum(params, shadow, [][]float32{grads}, 1.0/3)
		for i := range params {
			if shadow[i] != float32(params[i]) {
				t.Fatalf("step %d param %d: shadow %g, float32(master) %g",
					step, i, shadow[i], float32(params[i]))
			}
		}
	}
}

// TestAdam32MultiShardMatchesPresummed checks the general shard-reduce path
// against the single-shard fast path: two shards must update exactly like
// one shard holding their (ascending shard order) sum.
func TestAdam32MultiShardMatchesPresummed(t *testing.T) {
	const size = 17
	s0 := make([]float32, size)
	s1 := make([]float32, size)
	sum := make([]float32, size)
	for i := 0; i < size; i++ {
		s0[i] = float32(math.Sin(float64(i))) * 3
		s1[i] = float32(math.Cos(float64(i))) * 2
		sum[i] = s0[i] + s1[i]
	}
	const scale = float32(1.0 / 3)

	multi, _ := NewAdam32(size, 0.01)
	mParams := make([]float64, size)
	mShadow := make([]float32, size)
	single, _ := NewAdam32(size, 0.01)
	sParams := make([]float64, size)
	sShadow := make([]float32, size)

	for step := 0; step < 25; step++ {
		multi.StepSum(mParams, mShadow, [][]float32{s0, s1}, scale)
		single.StepSum(sParams, sShadow, [][]float32{sum}, scale)
	}
	for i := range mParams {
		if mParams[i] != sParams[i] || mShadow[i] != sShadow[i] {
			t.Fatalf("param %d: multi-shard %g/%g, presummed %g/%g",
				i, mParams[i], mShadow[i], sParams[i], sShadow[i])
		}
	}
}

// TestAdam32TracksFloat64Adam drives Adam and Adam32 with the same gradient
// stream and bounds how far the reduced-precision masters drift. The
// per-step error of float32 moments and the reciprocal-multiply bias
// correction is O(1e-7) relative; 50 steps of lr=0.01 updates stay well
// inside 1e-4 absolute.
func TestAdam32TracksFloat64Adam(t *testing.T) {
	const size, steps = 31, 50
	const tol = 1e-4

	a64, _ := NewAdam(size, 0.01)
	p64 := make([]float64, size)
	g64 := make([]float64, size)

	a32, _ := NewAdam32(size, 0.01)
	p32 := make([]float64, size)
	shadow := make([]float32, size)
	g32 := make([]float32, size)

	for step := 0; step < steps; step++ {
		stepGrads(g32, step)
		for i, g := range g32 {
			g64[i] = float64(g)
		}
		a64.StepSum(p64, [][]float64{g64}, 1.0/3)
		a32.StepSum(p32, shadow, [][]float32{g32}, 1.0/3)
	}
	for i := range p64 {
		if d := math.Abs(p64[i] - p32[i]); d > tol {
			t.Fatalf("param %d drifted %g (float64 %g, float32 path %g)", i, d, p64[i], p32[i])
		}
	}
}

func TestAdam32SizePanics(t *testing.T) {
	adam, _ := NewAdam32(3, 0.1)
	cases := map[string]func(){
		"shard": func() {
			adam.StepSum(make([]float64, 3), make([]float32, 3), [][]float32{make([]float32, 2)}, 1)
		},
		"shadow": func() {
			adam.StepSum(make([]float64, 3), make([]float32, 2), [][]float32{make([]float32, 3)}, 1)
		},
		"params": func() {
			adam.StepSum(make([]float64, 4), make([]float32, 3), [][]float32{make([]float32, 3)}, 1)
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s size mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestStepSumFastPathMatchesGeneral pins the float64 single-shard fast path
// against the general shard reduce: one presummed shard must reproduce the
// two shards it came from bit for bit.
func TestStepSumFastPathMatchesGeneral(t *testing.T) {
	const size = 17
	s0 := make([]float64, size)
	s1 := make([]float64, size)
	sum := make([]float64, size)
	for i := 0; i < size; i++ {
		s0[i] = math.Sin(float64(i)) * 3
		s1[i] = math.Cos(float64(i)) * 2
		sum[i] = s0[i] + s1[i]
	}
	const scale = 1.0 / 3

	multi, _ := NewAdam(size, 0.01)
	mParams := make([]float64, size)
	single, _ := NewAdam(size, 0.01)
	sParams := make([]float64, size)

	for step := 0; step < 25; step++ {
		multi.StepSum(mParams, [][]float64{s0, s1}, scale)
		single.StepSum(sParams, [][]float64{sum}, scale)
	}
	for i := range mParams {
		if mParams[i] != sParams[i] {
			t.Fatalf("param %d: multi-shard %g, presummed %g", i, mParams[i], sParams[i])
		}
	}
}
