package linalg

import (
	"fmt"
	"math"
)

// Adam is the Adam stochastic optimizer (Kingma & Ba, 2014), the weight
// optimizer the paper uses for both MLP and CNN training.
type Adam struct {
	// LR is the learning rate; mutable between steps for fine-tuning
	// schedules that lower the rate in later rounds.
	LR float64

	beta1 float64
	beta2 float64
	eps   float64

	m []float64 // first-moment estimate
	v []float64 // second-moment estimate
	t int       // step count
}

// NewAdam creates an optimizer for a parameter vector of the given size
// with the canonical defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(size int, lr float64) (*Adam, error) {
	if size <= 0 {
		return nil, fmt.Errorf("linalg: adam size %d", size)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("linalg: adam learning rate %g", lr)
	}
	return &Adam{
		LR:    lr,
		beta1: 0.9,
		beta2: 0.999,
		eps:   1e-8,
		m:     make([]float64, size),
		v:     make([]float64, size),
	}, nil
}

// Step applies one bias-corrected Adam update: params -= lr * m̂/(√v̂+ε).
func (a *Adam) Step(params, grads []float64) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic(fmt.Sprintf("linalg: adam size mismatch: state %d, params %d, grads %d",
			len(a.m), len(params), len(grads)))
	}
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.eps)
	}
}

// StepSum applies one Adam update from sharded gradients: the effective
// gradient is scale·Σ parts[w][i], summed in shard order. It fuses the
// reduce, the 1/batch scaling, and the moment update into a single pass,
// replacing the Zero/Axpy/Scale/Step sequence minibatch loops used to run —
// and produces bit-identical results to that sequence, since the shard-order
// sum and the scale multiply happen in the same order.
func (a *Adam) StepSum(params []float64, parts [][]float64, scale float64) {
	if len(params) != len(a.m) {
		panic(fmt.Sprintf("linalg: adam size mismatch: state %d, params %d", len(a.m), len(params)))
	}
	for w, p := range parts {
		if len(p) != len(a.m) {
			panic(fmt.Sprintf("linalg: adam size mismatch: state %d, grad shard %d has %d", len(a.m), w, len(p)))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i := range params {
		var g float64
		for _, p := range parts {
			g += p[i]
		}
		g *= scale
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.eps)
	}
}

// Reset clears the moment estimates and step count, keeping the size.
func (a *Adam) Reset() {
	Zero(a.m)
	Zero(a.v)
	a.t = 0
}
