package linalg

import (
	"fmt"
	"math"
)

// Adam is the Adam stochastic optimizer (Kingma & Ba, 2014), the weight
// optimizer the paper uses for both MLP and CNN training.
type Adam struct {
	// LR is the learning rate; mutable between steps for fine-tuning
	// schedules that lower the rate in later rounds.
	LR float64

	beta1 float64
	beta2 float64
	eps   float64

	m []float64 // first-moment estimate
	v []float64 // second-moment estimate
	t int       // step count
}

// NewAdam creates an optimizer for a parameter vector of the given size
// with the canonical defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(size int, lr float64) (*Adam, error) {
	if size <= 0 {
		return nil, fmt.Errorf("linalg: adam size %d", size)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("linalg: adam learning rate %g", lr)
	}
	return &Adam{
		LR:    lr,
		beta1: 0.9,
		beta2: 0.999,
		eps:   1e-8,
		m:     make([]float64, size),
		v:     make([]float64, size),
	}, nil
}

// Step applies one bias-corrected Adam update: params -= lr * m̂/(√v̂+ε).
func (a *Adam) Step(params, grads []float64) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic(fmt.Sprintf("linalg: adam size mismatch: state %d, params %d, grads %d",
			len(a.m), len(params), len(grads)))
	}
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mHat := a.m[i] / c1
		vHat := a.v[i] / c2
		params[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.eps)
	}
}

// StepSum applies one Adam update from sharded gradients: the effective
// gradient is scale·Σ parts[w][i], summed in shard order. It fuses the
// reduce, the 1/batch scaling, and the moment update into a single pass,
// replacing the Zero/Axpy/Scale/Step sequence minibatch loops used to run —
// and produces bit-identical results to that sequence, since the shard-order
// sum and the scale multiply happen in the same order.
//
// This update is the serial floor of every training path (three divides and
// a square root per parameter, each batch), so the loop is written for the
// divider unit and nothing else: moment slices and β constants are hoisted
// into locals pinned to len(params) (one field load and one bounds check per
// slice instead of per element), the stored moments are kept in registers
// for the bias correction instead of re-read, and the ubiquitous one-shard
// call skips the shard reduce loop. Every arithmetic op, in order, is the
// same as the naive loop's, so the results stay bit-identical.
func (a *Adam) StepSum(params []float64, parts [][]float64, scale float64) {
	if len(params) != len(a.m) {
		panic(fmt.Sprintf("linalg: adam size mismatch: state %d, params %d", len(a.m), len(params)))
	}
	for w, p := range parts {
		if len(p) != len(a.m) {
			panic(fmt.Sprintf("linalg: adam size mismatch: state %d, grad shard %d has %d", len(a.m), w, len(p)))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	n := len(params)
	m, v := a.m[:n], a.v[:n]
	beta1, beta2, lr, eps := a.beta1, a.beta2, a.LR, a.eps
	omb1, omb2 := 1-beta1, 1-beta2
	if len(parts) == 1 {
		p := parts[0][:n]
		for i := range params {
			var g float64
			g += p[i]
			g *= scale
			mi := beta1*m[i] + omb1*g
			vi := beta2*v[i] + omb2*g*g
			m[i], v[i] = mi, vi
			params[i] -= lr * (mi / c1) / (math.Sqrt(vi/c2) + eps)
		}
		return
	}
	for i := range params {
		var g float64
		for _, p := range parts {
			g += p[i]
		}
		g *= scale
		mi := beta1*m[i] + omb1*g
		vi := beta2*v[i] + omb2*g*g
		m[i], v[i] = mi, vi
		params[i] -= lr * (mi / c1) / (math.Sqrt(vi/c2) + eps)
	}
}

// Reset clears the moment estimates and step count, keeping the size.
func (a *Adam) Reset() {
	Zero(a.m)
	Zero(a.v)
	a.t = 0
}

// Adam32 is the reduced-precision optimizer for the float32 training path:
// float32 moment estimates updated with float32 arithmetic, applied to
// float64 master parameters (kept wide so update round-off does not
// compound across steps — the master-copy shape of Micikevicius et al.,
// arXiv:1710.03740). Unlike Adam.StepSum it makes no bit-exactness promise
// against any float64 reference — it sits on the "within stated tolerance"
// side of the precision policy — which frees it to fold the two
// bias-correction divides into reciprocal multiplies. One float32 divide
// and one float32 square root per parameter replace StepSum's three
// float64 divides and float64 square root; since the divider unit is what
// bounds the optimizer step, this (plus halved moment-state traffic) is
// where most of the float32 path's training speedup comes from.
type Adam32 struct {
	// LR is the learning rate; mutable between steps.
	LR float64

	beta1 float32
	beta2 float32
	eps   float32

	m []float32 // first-moment estimate
	v []float32 // second-moment estimate
	t int       // step count
}

// NewAdam32 creates a reduced-precision optimizer for a parameter vector of
// the given size with the canonical defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam32(size int, lr float64) (*Adam32, error) {
	if size <= 0 {
		return nil, fmt.Errorf("linalg: adam size %d", size)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("linalg: adam learning rate %g", lr)
	}
	return &Adam32{
		LR:    lr,
		beta1: 0.9,
		beta2: 0.999,
		eps:   1e-8,
		m:     make([]float32, size),
		v:     make([]float32, size),
	}, nil
}

// StepSum applies one bias-corrected update from sharded float32 gradients:
// the effective gradient is scale·Σ parts[w][i] in float32, the moment
// update runs in float32, and only the final per-parameter delta widens to
// float64 as it is subtracted from the master vector. Each updated master
// is re-narrowed into shadow in the same pass — the float32 working copy
// the next forward/backward reads — which folds what would be a separate
// full-vector conversion sweep into a loop that is already streaming the
// parameters through the cache.
func (a *Adam32) StepSum(params []float64, shadow []float32, parts [][]float32, scale float32) {
	if len(params) != len(a.m) {
		panic(fmt.Sprintf("linalg: adam size mismatch: state %d, params %d", len(a.m), len(params)))
	}
	if len(shadow) != len(a.m) {
		panic(fmt.Sprintf("linalg: adam size mismatch: state %d, shadow %d", len(a.m), len(shadow)))
	}
	for w, p := range parts {
		if len(p) != len(a.m) {
			panic(fmt.Sprintf("linalg: adam size mismatch: state %d, grad shard %d has %d", len(a.m), w, len(p)))
		}
	}
	a.t++
	c1 := 1 - math.Pow(float64(a.beta1), float64(a.t))
	c2 := 1 - math.Pow(float64(a.beta2), float64(a.t))
	invC1, invC2 := float32(1/c1), float32(1/c2)
	n := len(params)
	m, v, sh := a.m[:n], a.v[:n], shadow[:n]
	beta1, beta2, eps := a.beta1, a.beta2, a.eps
	omb1, omb2 := 1-beta1, 1-beta2
	lr := float32(a.LR)
	if len(parts) == 1 {
		p := parts[0][:n]
		for i := range params {
			g := p[i] * scale
			mi := beta1*m[i] + omb1*g
			vi := beta2*v[i] + omb2*g*g
			m[i], v[i] = mi, vi
			// float32(math.Sqrt(float64(x))) compiles to a single-precision
			// hardware square root; no widening happens at run time.
			den := float32(math.Sqrt(float64(vi*invC2))) + eps
			pi := params[i] - float64(lr*(mi*invC1)/den)
			params[i] = pi
			sh[i] = float32(pi)
		}
		return
	}
	for i := range params {
		var g float32
		for _, p := range parts {
			g += p[i]
		}
		g *= scale
		mi := beta1*m[i] + omb1*g
		vi := beta2*v[i] + omb2*g*g
		m[i], v[i] = mi, vi
		den := float32(math.Sqrt(float64(vi*invC2))) + eps
		pi := params[i] - float64(lr*(mi*invC1)/den)
		params[i] = pi
		sh[i] = float32(pi)
	}
}

// Reset clears the moment estimates and step count, keeping the size.
func (a *Adam32) Reset() {
	Zero32(a.m)
	Zero32(a.v)
	a.t = 0
}
