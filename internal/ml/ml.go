// Package ml defines the classifier contract shared by the SVM, random
// forest, MLP, and CNN implementations, plus the label encoding used to map
// class names onto model outputs.
package ml

import (
	"fmt"
	"sort"

	"elevprivacy/internal/ml/linalg"
)

// Classifier is a multi-class model over dense feature vectors. The batch
// methods are the serving contract: implementations evaluate whole feature
// matrices natively (matrix kernels, parallel tree votes) rather than
// looping over Predict, and must return exactly the labels the per-sample
// path would.
type Classifier interface {
	// Fit trains on features X (n×d) with integer class labels y in
	// [0, classes). Implementations may be re-fit to warm-start.
	Fit(x [][]float64, y []int) error
	// Predict returns the most likely class for one feature vector.
	Predict(x []float64) (int, error)
	// PredictBatch returns the most likely class for every row of x.
	PredictBatch(x *linalg.Matrix) ([]int, error)
	// Scores returns one row of per-class scores for every row of x.
	// The score scale is model-specific (margins, vote fractions, or
	// probabilities); the row argmax is always the predicted class.
	Scores(x *linalg.Matrix) (*linalg.Matrix, error)
}

// SparseBatchClassifier is implemented by classifiers that score CSR
// feature batches natively — the serving path for bag-of-words features,
// which are >95% zeros. Implementations must return exactly what the dense
// batch methods return on ToDense() of the same matrix, bit for bit.
type SparseBatchClassifier interface {
	// PredictBatchSparse returns the most likely class for every row of x.
	PredictBatchSparse(x *linalg.SparseMatrix) ([]int, error)
	// ScoresSparse returns one row of per-class scores for every row of x.
	ScoresSparse(x *linalg.SparseMatrix) (*linalg.Matrix, error)
}

// SparseTrainer is implemented by classifiers that train on CSR feature
// batches natively — the training-path counterpart of
// SparseBatchClassifier. Implementations must produce a model bit-identical
// to Fit on ToDense() of the same matrix: sparse training skips multiplies
// against zeros, never reorders the surviving accumulation.
type SparseTrainer interface {
	// FitSparse trains on a CSR feature matrix with labels y in
	// [0, classes).
	FitSparse(x *linalg.SparseMatrix, y []int) error
}

// ValidateSparseTrainingSet performs the shape checks sparse training
// needs: non-empty X, matching y, labels within [0, classes). Row
// dimensionality is uniform by CSR construction.
func ValidateSparseTrainingSet(x *linalg.SparseMatrix, y []int, classes int) error {
	if x == nil || x.Rows == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if x.Rows != len(y) {
		return fmt.Errorf("ml: %d samples but %d labels", x.Rows, len(y))
	}
	if classes < 2 {
		return fmt.Errorf("ml: need >= 2 classes, got %d", classes)
	}
	if x.Cols == 0 {
		return fmt.Errorf("ml: zero-dimensional features")
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return fmt.Errorf("ml: label %d of sample %d outside [0,%d)", label, i, classes)
		}
	}
	return nil
}

// ValidateTrainingSet performs the shape checks every classifier needs:
// non-empty X with consistent dimensionality, matching y, labels within
// [0, classes).
func ValidateTrainingSet(x [][]float64, y []int, classes int) (dim int, err error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("ml: empty training set")
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("ml: %d samples but %d labels", len(x), len(y))
	}
	if classes < 2 {
		return 0, fmt.Errorf("ml: need >= 2 classes, got %d", classes)
	}
	dim = len(x[0])
	if dim == 0 {
		return 0, fmt.Errorf("ml: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != dim {
			return 0, fmt.Errorf("ml: sample %d has dim %d, want %d", i, len(row), dim)
		}
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return 0, fmt.Errorf("ml: label %d of sample %d outside [0,%d)", label, i, classes)
		}
	}
	return dim, nil
}

// LabelEncoder maps string class names to contiguous integer indices in
// sorted-name order.
type LabelEncoder struct {
	toIndex map[string]int
	names   []string
}

// NewLabelEncoder builds an encoder over the distinct names present.
func NewLabelEncoder(names []string) (*LabelEncoder, error) {
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if len(seen) < 2 {
		return nil, fmt.Errorf("ml: need >= 2 distinct labels, got %d", len(seen))
	}
	uniq := make([]string, 0, len(seen))
	for n := range seen {
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)

	e := &LabelEncoder{toIndex: make(map[string]int, len(uniq)), names: uniq}
	for i, n := range uniq {
		e.toIndex[n] = i
	}
	return e, nil
}

// Encode maps a class name to its index.
func (e *LabelEncoder) Encode(name string) (int, error) {
	i, ok := e.toIndex[name]
	if !ok {
		return 0, fmt.Errorf("ml: unknown label %q", name)
	}
	return i, nil
}

// EncodeAll maps a batch of names.
func (e *LabelEncoder) EncodeAll(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := e.Encode(n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}

// Decode maps an index back to its class name.
func (e *LabelEncoder) Decode(i int) (string, error) {
	if i < 0 || i >= len(e.names) {
		return "", fmt.Errorf("ml: label index %d outside [0,%d)", i, len(e.names))
	}
	return e.names[i], nil
}

// Len returns the class count.
func (e *LabelEncoder) Len() int { return len(e.names) }

// Names returns the class names in index order. The slice is a copy.
func (e *LabelEncoder) Names() []string {
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}
