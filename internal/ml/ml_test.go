package ml

import "testing"

func TestValidateTrainingSet(t *testing.T) {
	goodX := [][]float64{{1, 2}, {3, 4}}
	goodY := []int{0, 1}

	dim, err := ValidateTrainingSet(goodX, goodY, 2)
	if err != nil || dim != 2 {
		t.Fatalf("valid set rejected: dim=%d err=%v", dim, err)
	}

	tests := []struct {
		name    string
		x       [][]float64
		y       []int
		classes int
	}{
		{"empty", nil, nil, 2},
		{"length mismatch", goodX, []int{0}, 2},
		{"one class", goodX, goodY, 1},
		{"zero dim", [][]float64{{}, {}}, goodY, 2},
		{"ragged", [][]float64{{1, 2}, {3}}, goodY, 2},
		{"label out of range", goodX, []int{0, 2}, 2},
		{"negative label", goodX, []int{-1, 0}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ValidateTrainingSet(tc.x, tc.y, tc.classes); err == nil {
				t.Error("invalid set accepted")
			}
		})
	}
}

func TestLabelEncoder(t *testing.T) {
	e, err := NewLabelEncoder([]string{"nyc", "miami", "nyc", "duluth"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 3 {
		t.Fatalf("Len = %d", e.Len())
	}
	// Sorted order: duluth, miami, nyc.
	names := e.Names()
	if names[0] != "duluth" || names[1] != "miami" || names[2] != "nyc" {
		t.Errorf("Names = %v", names)
	}
	i, err := e.Encode("miami")
	if err != nil || i != 1 {
		t.Errorf("Encode(miami) = %d, %v", i, err)
	}
	name, err := e.Decode(2)
	if err != nil || name != "nyc" {
		t.Errorf("Decode(2) = %q, %v", name, err)
	}
	if _, err := e.Encode("atlantis"); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := e.Decode(5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := e.Decode(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestLabelEncoderEncodeAll(t *testing.T) {
	e, err := NewLabelEncoder([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EncodeAll([]string{"b", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Errorf("EncodeAll = %v", got)
	}
	if _, err := e.EncodeAll([]string{"a", "zzz"}); err == nil {
		t.Error("unknown label in batch accepted")
	}
}

func TestLabelEncoderRequiresTwoClasses(t *testing.T) {
	if _, err := NewLabelEncoder([]string{"only", "only"}); err == nil {
		t.Error("single-class encoder accepted")
	}
	if _, err := NewLabelEncoder(nil); err == nil {
		t.Error("empty encoder accepted")
	}
}

func TestLabelEncoderNamesIsCopy(t *testing.T) {
	e, err := NewLabelEncoder([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	names := e.Names()
	names[0] = "mutated"
	if got := e.Names()[0]; got != "a" {
		t.Errorf("Names leaked internal storage: %q", got)
	}
}
