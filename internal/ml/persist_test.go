package ml

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteReadModelRoundTrip(t *testing.T) {
	cfg, _ := json.Marshal(map[string]int{"classes": 3})
	blocks := [][]float64{
		{1.5, -2.25, 3.125},
		{},
		{42},
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, Header{Kind: "test", Config: cfg}, blocks...); err != nil {
		t.Fatal(err)
	}
	h, back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != "test" {
		t.Errorf("kind = %q", h.Kind)
	}
	var decoded map[string]int
	if err := json.Unmarshal(h.Config, &decoded); err != nil || decoded["classes"] != 3 {
		t.Errorf("config = %s (%v)", h.Config, err)
	}
	if len(back) != 3 {
		t.Fatalf("blocks = %d", len(back))
	}
	for i := range blocks {
		if len(back[i]) != len(blocks[i]) {
			t.Fatalf("block %d length %d, want %d", i, len(back[i]), len(blocks[i]))
		}
		for j := range blocks[i] {
			if back[i][j] != blocks[i][j] {
				t.Errorf("block %d value %d = %f", i, j, back[i][j])
			}
		}
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOPE",
		"ELPV",                   // truncated after magic
		"ELPV\xff\xff\xff\xff",   // absurd header length
		"ELPV\x02\x00\x00\x00{}", // truncated block count
	}
	for _, c := range cases {
		if _, _, err := ReadModel(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestWriteModelValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteModel(&buf, Header{}); err == nil {
		t.Error("empty kind accepted")
	}
}
