package svm

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// padSparse embeds each sample in a wider feature space with zero columns,
// so the CSR form actually skips entries.
func padSparse(x [][]float64, dim int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		wide := make([]float64, dim)
		for j, v := range row {
			wide[j*3] = v
		}
		out[i] = wide
	}
	return out
}

// TestSparseMatchesDense pins the SparseBatchClassifier contract:
// ScoresSparse and PredictBatchSparse on a CSR batch must reproduce
// Scores/PredictBatch on its dense form bit for bit — including through
// the L2 input normalization.
func TestSparseMatchesDense(t *testing.T) {
	raw, y := gaussianBlobs([][]float64{{0, 0}, {6, 0}, {0, 6}}, 25, 0.8, 11)
	x := padSparse(raw, 12)
	clf, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	sp := linalg.SparseFromDense(xm)

	dense, err := clf.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := clf.ScoresSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.Data {
		if dense.Data[i] != sparse.Data[i] {
			t.Fatalf("score %d: dense %v, sparse %v", i, dense.Data[i], sparse.Data[i])
		}
	}

	dPreds, err := clf.PredictBatch(xm)
	if err != nil {
		t.Fatal(err)
	}
	sPreds, err := clf.PredictBatchSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dPreds {
		if dPreds[i] != sPreds[i] {
			t.Fatalf("sample %d: dense class %d, sparse class %d", i, dPreds[i], sPreds[i])
		}
	}
}

// TestFitSparseMatchesFit pins the sparse training contract: FitSparse on
// a CSR batch must produce a model bit-identical to Fit on its dense form —
// same Pegasos RNG streams, hinge updates over stored nonzeros only.
func TestFitSparseMatchesFit(t *testing.T) {
	raw, y := gaussianBlobs([][]float64{{0, 0}, {6, 0}, {0, 6}}, 25, 0.8, 13)
	x := padSparse(raw, 12)

	dense, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.FitSparse(linalg.SparseFromDense(xm), y); err != nil {
		t.Fatal(err)
	}

	want, err := dense.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sparse.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("score %d: dense-trained %v, sparse-trained %v", i, want.Data[i], got.Data[i])
		}
	}
}

// TestRefitMatchesFresh pins the Fit contract shared by all four
// classifiers: refitting a used model is bit-identical to fitting a fresh
// one (no state survives across fits).
func TestRefitMatchesFresh(t *testing.T) {
	x, y := gaussianBlobs([][]float64{{0, 0}, {6, 6}}, 20, 0.5, 14)
	refit, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := refit.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("score %d: refit %v, fresh %v", i, want.Data[i], got.Data[i])
		}
	}
}

func TestSparsePredictValidation(t *testing.T) {
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	one := linalg.SparseFromDense(linalg.NewMatrix(1, 2))
	if _, err := clf.PredictBatchSparse(one); err == nil {
		t.Error("sparse predict before fit accepted")
	}
	x, y := gaussianBlobs([][]float64{{0, 0}, {5, 5}}, 8, 0.3, 12)
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	wrong := linalg.SparseFromDense(linalg.NewMatrix(2, 5))
	if _, err := clf.PredictBatchSparse(wrong); err == nil {
		t.Error("wrong-dim sparse batch accepted")
	}
}
