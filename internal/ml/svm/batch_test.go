package svm

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// TestPredictBatchMatchesPredict pins the batch contract: one PredictBatch
// call over the matrix must agree with per-sample Predict on every row, and
// each Scores row must be bit-identical to DecisionValues.
func TestPredictBatchMatchesPredict(t *testing.T) {
	x, y := gaussianBlobs([][]float64{{0, 0}, {6, 0}, {0, 6}}, 25, 0.8, 7)
	clf, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := clf.PredictBatch(xm)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := clf.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want, err := clf.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("sample %d: batch %d, serial %d", i, batch[i], want)
		}
		dv, err := clf.DecisionValues(x[i])
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range dv {
			if scores.At(i, k) != v {
				t.Errorf("sample %d score %d: batch %g, serial %g", i, k, scores.At(i, k), v)
			}
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clf.PredictBatch(linalg.NewMatrix(1, 1)); err == nil {
		t.Error("batch predict before fit accepted")
	}
	x, y := gaussianBlobs([][]float64{{0, 0}, {5, 5}}, 8, 0.3, 8)
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := clf.PredictBatch(linalg.NewMatrix(2, 5)); err == nil {
		t.Error("wrong-dim batch accepted")
	}
}
