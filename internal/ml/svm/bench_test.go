package svm

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// benchFitted trains a classifier on a BoW-sized problem (512 features,
// the text-attack vocabulary size) for the inference benchmarks.
func benchFitted(b *testing.B, n int) (*SVM, [][]float64, *linalg.Matrix) {
	b.Helper()
	centers := make([][]float64, 4)
	for c := range centers {
		center := make([]float64, 512)
		for d := c * 128; d < (c+1)*128; d++ {
			center[d] = 1
		}
		centers[c] = center
	}
	x, y := gaussianBlobs(centers, n/4, 0.2, 1)
	clf, err := New(DefaultConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		b.Fatal(err)
	}
	return clf, x, xm
}

func BenchmarkPredictLoop(b *testing.B) {
	clf, x, _ := benchFitted(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			if _, err := clf.Predict(x[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	clf, _, xm := benchFitted(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clf.PredictBatch(xm); err != nil {
			b.Fatal(err)
		}
	}
}
