// Package svm implements a linear support vector machine trained with the
// Pegasos stochastic sub-gradient algorithm, extended to multi-class via
// one-vs-rest, matching the paper's "standard SVM" classifier on
// bag-of-words feature vectors.
package svm

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
	"elevprivacy/internal/obs"
)

// Config tunes training.
type Config struct {
	// Classes is the number of classes.
	Classes int
	// Lambda is the regularization strength (Pegasos λ).
	Lambda float64
	// Epochs is the number of passes over the training set per binary
	// sub-problem.
	Epochs int
	// Seed drives the stochastic sampling.
	Seed int64
	// NormalizeL2, when true, L2-normalizes every input vector before
	// training and prediction — standard practice for bag-of-words
	// features and what makes the margin scale-free.
	NormalizeL2 bool
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig(classes int) Config {
	return Config{
		Classes:     classes,
		Lambda:      1e-2,
		Epochs:      60,
		Seed:        1,
		NormalizeL2: true,
	}
}

// SVM is a one-vs-rest linear SVM.
type SVM struct {
	cfg Config
	dim int
	// w row c and b[c] are the hyperplane of the class-c-vs-rest problem;
	// keeping all hyperplanes in one Classes×dim matrix makes batch
	// scoring a single affine kernel.
	w *linalg.Matrix
	b []float64
}

var (
	_ ml.Classifier            = (*SVM)(nil)
	_ ml.SparseBatchClassifier = (*SVM)(nil)
	_ ml.SparseTrainer         = (*SVM)(nil)
)

// New creates an untrained SVM.
func New(cfg Config) (*SVM, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("svm: need >= 2 classes, got %d", cfg.Classes)
	}
	if cfg.Lambda <= 0 {
		return nil, fmt.Errorf("svm: lambda must be positive, got %g", cfg.Lambda)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("svm: epochs must be >= 1, got %d", cfg.Epochs)
	}
	return &SVM{cfg: cfg}, nil
}

// Fit trains all one-vs-rest hyperplanes. Binary sub-problems are
// independent and train concurrently; each uses its own seeded RNG, so the
// result is deterministic regardless of scheduling.
func (s *SVM) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingSet(x, y, s.cfg.Classes)
	if err != nil {
		return fmt.Errorf("svm: %w", err)
	}
	s.dim = dim
	if s.cfg.NormalizeL2 {
		x = normalizeAll(x)
	}
	s.w = linalg.NewMatrix(s.cfg.Classes, dim)
	s.b = make([]float64, s.cfg.Classes)

	fitStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < s.cfg.Classes; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := time.Now()
			s.b[c] = s.fitBinary(x, y, c, s.w.Row(c))
			classFitSeconds.ObserveSince(start)
		}(c)
	}
	wg.Wait()
	epochSeconds.ObserveSince(fitStart)
	return nil
}

// FitSparse trains all one-vs-rest hyperplanes on a CSR feature batch
// without densifying it: margins and hinge steps touch only stored
// nonzeros. The model is bit-identical to Fit on ToDense() of the same
// matrix — normalization, dots, and hinge updates all skip exact-zero
// terms that the dense path absorbs as identity adds, and the per-class
// RNG streams are untouched. The regularization shrink and the averaging
// accumulation stay dense (they act on w, not x), so the asymptotic win
// is the O(nnz) hot half of each step plus never materializing the dense
// matrix.
func (s *SVM) FitSparse(x *linalg.SparseMatrix, y []int) error {
	if err := ml.ValidateSparseTrainingSet(x, y, s.cfg.Classes); err != nil {
		return fmt.Errorf("svm: %w", err)
	}
	s.dim = x.Cols
	if s.cfg.NormalizeL2 {
		x = normalizedSparse(x)
	}
	s.w = linalg.NewMatrix(s.cfg.Classes, s.dim)
	s.b = make([]float64, s.cfg.Classes)

	fitStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < s.cfg.Classes; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start := time.Now()
			s.b[c] = s.fitBinarySparse(x, y, c, s.w.Row(c))
			classFitSeconds.ObserveSince(start)
		}(c)
	}
	wg.Wait()
	epochSeconds.ObserveSince(fitStart)
	return nil
}

// Training telemetry. The SVM has no epoch loop at this level — one Fit is
// one pass over the one-vs-rest problems — so the "epoch" histogram records
// whole fits and classFitSeconds the concurrent binary sub-problems.
var (
	epochSeconds    = obs.GetHistogram(`elevpriv_ml_epoch_seconds{model="svm"}`, nil)
	classFitSeconds = obs.GetHistogram(`elevpriv_ml_class_fit_seconds{model="svm"}`, nil)
)

// fitBinary runs averaged Pegasos for the class-c-vs-rest problem, writing
// the averaged weight vector into wOut and returning the intercept: the
// returned hyperplane is the average of the iterates over the second half
// of training, which substantially stabilizes the stochastic solution.
func (s *SVM) fitBinary(x [][]float64, y []int, c int, wOut []float64) float64 {
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(c)*7919))
	w := make([]float64, s.dim)
	avgW := make([]float64, s.dim)
	var b, avgB float64
	var averaged int

	n := len(x)
	steps := s.cfg.Epochs * n
	burnIn := steps / 2
	for t := 1; t <= steps; t++ {
		i := rng.Intn(n)
		target := -1.0
		if y[i] == c {
			target = 1.0
		}
		eta := 1 / (s.cfg.Lambda * float64(t))

		margin := target * (linalg.Dot(w, x[i]) + b)
		// Shrink from regularization, then step on hinge violation.
		linalg.Scale(w, 1-eta*s.cfg.Lambda)
		if margin < 1 {
			linalg.Axpy(w, x[i], eta*target)
			b += eta * target * 0.01 // unregularized intercept, damped
		}
		if t > burnIn {
			linalg.Axpy(avgW, w, 1)
			avgB += b
			averaged++
		}
	}
	if averaged > 0 {
		linalg.Scale(avgW, 1/float64(averaged))
		copy(wOut, avgW)
		return avgB / float64(averaged)
	}
	copy(wOut, w)
	return b
}

// fitBinarySparse is fitBinary over CSR rows: the margin dot and the
// hinge step iterate stored nonzeros only, in the same ascending column
// order the dense kernels walk, so every float lands identically.
func (s *SVM) fitBinarySparse(x *linalg.SparseMatrix, y []int, c int, wOut []float64) float64 {
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(c)*7919))
	w := make([]float64, s.dim)
	avgW := make([]float64, s.dim)
	var b, avgB float64
	var averaged int

	n := x.Rows
	steps := s.cfg.Epochs * n
	burnIn := steps / 2
	for t := 1; t <= steps; t++ {
		i := rng.Intn(n)
		target := -1.0
		if y[i] == c {
			target = 1.0
		}
		eta := 1 / (s.cfg.Lambda * float64(t))

		cols, vals := x.RowNZ(i)
		margin := target * (linalg.SparseDot(cols, vals, w) + b)
		// Shrink from regularization, then step on hinge violation.
		linalg.Scale(w, 1-eta*s.cfg.Lambda)
		if margin < 1 {
			linalg.SparseAxpy(w, cols, vals, eta*target)
			b += eta * target * 0.01 // unregularized intercept, damped
		}
		if t > burnIn {
			linalg.Axpy(avgW, w, 1)
			avgB += b
			averaged++
		}
	}
	if averaged > 0 {
		linalg.Scale(avgW, 1/float64(averaged))
		copy(wOut, avgW)
		return avgB / float64(averaged)
	}
	copy(wOut, w)
	return b
}

// Predict returns the class with the largest decision value.
func (s *SVM) Predict(x []float64) (int, error) {
	scores, err := s.DecisionValues(x)
	if err != nil {
		return 0, err
	}
	return linalg.ArgMax(scores), nil
}

// DecisionValues returns the per-class hyperplane scores.
func (s *SVM) DecisionValues(x []float64) ([]float64, error) {
	if s.w == nil {
		return nil, fmt.Errorf("svm: model not fitted")
	}
	if len(x) != s.dim {
		return nil, fmt.Errorf("svm: feature dim %d, model expects %d", len(x), s.dim)
	}
	if s.cfg.NormalizeL2 {
		x = normalized(x)
	}
	scores := make([]float64, s.cfg.Classes)
	for c := range scores {
		scores[c] = s.b[c] + linalg.Dot(s.w.Row(c), x)
	}
	return scores, nil
}

// Scores computes the decision-value matrix for a feature batch in one
// affine kernel: row i holds the per-class hyperplane scores of sample i.
func (s *SVM) Scores(x *linalg.Matrix) (*linalg.Matrix, error) {
	if s.w == nil {
		return nil, fmt.Errorf("svm: model not fitted")
	}
	if x.Cols != s.dim {
		return nil, fmt.Errorf("svm: feature dim %d, model expects %d", x.Cols, s.dim)
	}
	if s.cfg.NormalizeL2 {
		x = normalizedMatrix(x)
	}
	return linalg.AffineT(x, s.w, s.b), nil
}

// PredictBatch returns the predicted class for every row of x, scoring the
// whole batch natively through the matrix kernel.
func (s *SVM) PredictBatch(x *linalg.Matrix) ([]int, error) {
	scores, err := s.Scores(x)
	if err != nil {
		return nil, err
	}
	return linalg.ArgMaxRows(scores), nil
}

// ScoresSparse computes the decision-value matrix for a CSR feature batch
// through the sparse affine kernel, skipping the >95% of multiplies that
// hit zeros. Scores match the dense path bit for bit: row norms and dots
// accumulate in the same ascending column order, and zero features
// contribute exact +0.0 terms in both.
func (s *SVM) ScoresSparse(x *linalg.SparseMatrix) (*linalg.Matrix, error) {
	if s.w == nil {
		return nil, fmt.Errorf("svm: model not fitted")
	}
	if x.Cols != s.dim {
		return nil, fmt.Errorf("svm: feature dim %d, model expects %d", x.Cols, s.dim)
	}
	if s.cfg.NormalizeL2 {
		x = normalizedSparse(x)
	}
	return linalg.SparseAffineT(x, s.w, s.b), nil
}

// PredictBatchSparse returns the predicted class for every row of a CSR
// feature batch.
func (s *SVM) PredictBatchSparse(x *linalg.SparseMatrix) ([]int, error) {
	scores, err := s.ScoresSparse(x)
	if err != nil {
		return nil, err
	}
	return linalg.ArgMaxRows(scores), nil
}

// normalized returns x scaled to unit L2 norm (copies; zero vectors pass
// through unchanged).
func normalized(x []float64) []float64 {
	n := linalg.Norm2(x)
	if n == 0 {
		return x
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v / n
	}
	return out
}

// normalizeAll normalizes a batch.
func normalizeAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = normalized(row)
	}
	return out
}

// normalizedMatrix returns a copy of m with unit-L2 rows (zero rows pass
// through unchanged), written in a single pass per row.
func normalizedMatrix(m *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		n := linalg.Norm2(src)
		if n == 0 {
			copy(dst, src)
			continue
		}
		for j, v := range src {
			dst[j] = v / n
		}
	}
	return out
}

// normalizedSparse returns x with unit-L2 rows (zero rows pass through
// unchanged), sharing the row structure and scaling only the values. The
// norm accumulates over the nonzeros in ascending column order — bitwise
// the dense Norm2 of the scattered row, whose zero terms add exact +0.0.
func normalizedSparse(x *linalg.SparseMatrix) *linalg.SparseMatrix {
	out := &linalg.SparseMatrix{
		Rows:   x.Rows,
		Cols:   x.Cols,
		RowPtr: x.RowPtr,
		ColIdx: x.ColIdx,
		Val:    make([]float64, len(x.Val)),
	}
	for i := 0; i < x.Rows; i++ {
		_, vals := x.RowNZ(i)
		var sq float64
		for _, v := range vals {
			sq += v * v
		}
		n := math.Sqrt(sq)
		lo := x.RowPtr[i]
		if n == 0 {
			copy(out.Val[lo:lo+len(vals)], vals)
			continue
		}
		for k, v := range vals {
			out.Val[lo+k] = v / n
		}
	}
	return out
}

// savedConfig is the persisted SVM description.
type savedConfig struct {
	Config Config `json:"config"`
	Dim    int    `json:"dim"`
}

// Save serializes the trained hyperplanes: one weight block per class plus
// a final intercept block.
func (s *SVM) Save(w io.Writer) error {
	if s.w == nil {
		return fmt.Errorf("svm: model not fitted")
	}
	cfgJSON, err := json.Marshal(savedConfig{Config: s.cfg, Dim: s.dim})
	if err != nil {
		return fmt.Errorf("svm: marshaling config: %w", err)
	}
	blocks := make([][]float64, 0, s.cfg.Classes+1)
	blocks = append(blocks, ml.RowBlocks(s.w)...)
	blocks = append(blocks, s.b)
	return ml.WriteModel(w, ml.Header{Kind: "svm", Config: cfgJSON}, blocks...)
}

// Load reconstructs a saved SVM.
func Load(r io.Reader) (*SVM, error) {
	h, blocks, err := ml.ReadModel(r)
	if err != nil {
		return nil, err
	}
	if h.Kind != "svm" {
		return nil, fmt.Errorf("svm: file holds a %q model", h.Kind)
	}
	var sc savedConfig
	if err := json.Unmarshal(h.Config, &sc); err != nil {
		return nil, fmt.Errorf("svm: parsing config: %w", err)
	}
	s, err := New(sc.Config)
	if err != nil {
		return nil, err
	}
	if len(blocks) != sc.Config.Classes+1 {
		return nil, fmt.Errorf("svm: %d blocks for %d classes", len(blocks), sc.Config.Classes)
	}
	s.dim = sc.Dim
	w, err := ml.MatrixFromBlocks(blocks[:sc.Config.Classes], sc.Dim)
	if err != nil {
		return nil, fmt.Errorf("svm: weights: %w", err)
	}
	s.w = w
	b := blocks[sc.Config.Classes]
	if len(b) != sc.Config.Classes {
		return nil, fmt.Errorf("svm: intercept block has %d values, want %d", len(b), sc.Config.Classes)
	}
	s.b = b
	return s, nil
}
