package svm

import (
	"bytes"
	"math/rand"
	"testing"
)

// gaussianBlobs generates `perClass` points around each of the given
// centers with the given spread.
func gaussianBlobs(centers [][]float64, perClass int, spread float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for c, center := range centers {
		for i := 0; i < perClass; i++ {
			p := make([]float64, len(center))
			for d := range center {
				p[d] = center[d] + rng.NormFloat64()*spread
			}
			x = append(x, p)
			y = append(y, c)
		}
	}
	return x, y
}

func accuracy(t *testing.T, clf interface {
	Predict([]float64) (int, error)
}, x [][]float64, y []int) float64 {
	t.Helper()
	var correct int
	for i := range x {
		pred, err := clf.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Classes: 1, Lambda: 1, Epochs: 1}); err == nil {
		t.Error("1 class accepted")
	}
	if _, err := New(Config{Classes: 2, Lambda: 0, Epochs: 1}); err == nil {
		t.Error("lambda 0 accepted")
	}
	if _, err := New(Config{Classes: 2, Lambda: 1, Epochs: 0}); err == nil {
		t.Error("0 epochs accepted")
	}
}

// blobConfig disables L2 normalization: raw geometric blobs (unlike BoW
// vectors) lose their separability when projected onto the unit sphere.
func blobConfig(classes int) Config {
	cfg := DefaultConfig(classes)
	cfg.NormalizeL2 = false
	cfg.Lambda = 1e-4
	return cfg
}

func TestBinarySeparable(t *testing.T) {
	x, y := gaussianBlobs([][]float64{{0, 0}, {6, 6}}, 40, 0.5, 1)
	clf, err := New(blobConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, clf, x, y); acc < 0.98 {
		t.Errorf("separable accuracy = %f, want >= 0.98", acc)
	}
}

func TestMultiClassSeparable(t *testing.T) {
	centers := [][]float64{{0, 0}, {8, 0}, {0, 8}, {8, 8}}
	x, y := gaussianBlobs(centers, 30, 0.6, 2)
	clf, err := New(blobConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, clf, x, y); acc < 0.95 {
		t.Errorf("4-class accuracy = %f, want >= 0.95", acc)
	}
}

func TestHighDimensionalSparse(t *testing.T) {
	// BoW-like features: class 0 lights features 0-4, class 1 features 5-9.
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	for i := 0; i < 60; i++ {
		v := make([]float64, 50)
		class := i % 2
		for j := 0; j < 5; j++ {
			v[class*5+rng.Intn(5)] += 0.2
		}
		x = append(x, v)
		y = append(y, class)
	}
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, clf, x, y); acc < 0.95 {
		t.Errorf("sparse accuracy = %f", acc)
	}
}

func TestFitValidation(t *testing.T) {
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := clf.Fit([][]float64{{1}}, []int{3}); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestPredictValidation(t *testing.T) {
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clf.Predict([]float64{1}); err == nil {
		t.Error("predict before fit accepted")
	}
	x, y := gaussianBlobs([][]float64{{0}, {5}}, 10, 0.1, 4)
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := clf.Predict([]float64{1, 2, 3}); err == nil {
		t.Error("wrong-dim predict accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	x, y := gaussianBlobs([][]float64{{0, 0}, {4, 4}}, 20, 1.0, 5)
	a, err := New(blobConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(blobConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.w.Data {
		if v != b.w.Data[i] {
			t.Fatal("same-seed training diverges (parallelism nondeterminism?)")
		}
	}
}

func TestDecisionValuesShape(t *testing.T) {
	x, y := gaussianBlobs([][]float64{{0, 0}, {4, 4}, {0, 4}}, 15, 0.5, 6)
	clf, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	scores, err := clf.DecisionValues(x[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Errorf("scores = %v", scores)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	x, y := gaussianBlobs([][]float64{{1, 5}, {5, 1}, {5, 5}}, 12, 0.4, 41)
	clf, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want, _ := clf.DecisionValues(x[i])
		got, err := back.DecisionValues(x[i])
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("sample %d scores: %v vs %v", i, got, want)
			}
		}
	}
}

func TestSaveUnfittedRejected(t *testing.T) {
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err == nil {
		t.Error("unfitted model saved")
	}
}
