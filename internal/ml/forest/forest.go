// Package forest implements a random forest classifier — bootstrap-sampled
// CART trees with Gini splits and √d feature subsampling, majority-voted —
// matching the paper's "standard RFC, with 100 trees".
package forest

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/linalg"
)

// Config tunes the forest.
type Config struct {
	// Classes is the number of classes.
	Classes int
	// Trees is the ensemble size (paper: 100).
	Trees int
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum sample count in a leaf.
	MinLeaf int
	// FeaturesPerSplit is the number of candidate features per split;
	// 0 means ⌈√d⌉.
	FeaturesPerSplit int
	// Seed drives bootstrap and feature sampling.
	Seed int64
}

// DefaultConfig returns the paper's forest: 100 trees.
func DefaultConfig(classes int) Config {
	return Config{
		Classes:  classes,
		Trees:    100,
		MaxDepth: 24,
		MinLeaf:  1,
		Seed:     1,
	}
}

// Forest is a trained random forest.
type Forest struct {
	cfg   Config
	dim   int
	trees []*node
}

var (
	_ ml.Classifier            = (*Forest)(nil)
	_ ml.SparseBatchClassifier = (*Forest)(nil)
)

// node is one CART tree node; leaves carry a class.
type node struct {
	leaf      bool
	class     int
	feature   int
	threshold float64
	left      *node
	right     *node
}

// New creates an untrained forest.
func New(cfg Config) (*Forest, error) {
	switch {
	case cfg.Classes < 2:
		return nil, fmt.Errorf("forest: need >= 2 classes, got %d", cfg.Classes)
	case cfg.Trees < 1:
		return nil, fmt.Errorf("forest: need >= 1 tree, got %d", cfg.Trees)
	case cfg.MinLeaf < 1:
		return nil, fmt.Errorf("forest: MinLeaf must be >= 1, got %d", cfg.MinLeaf)
	case cfg.MaxDepth < 0:
		return nil, fmt.Errorf("forest: negative MaxDepth %d", cfg.MaxDepth)
	}
	return &Forest{cfg: cfg}, nil
}

// Fit grows all trees on bootstrap resamples. Trees are independent and
// grow concurrently, each with its own seeded RNG for determinism.
func (f *Forest) Fit(x [][]float64, y []int) error {
	dim, err := ml.ValidateTrainingSet(x, y, f.cfg.Classes)
	if err != nil {
		return fmt.Errorf("forest: %w", err)
	}
	f.dim = dim

	mtry := f.cfg.FeaturesPerSplit
	if mtry <= 0 {
		mtry = int(math.Ceil(math.Sqrt(float64(dim))))
	}
	if mtry > dim {
		mtry = dim
	}

	// Bounded worker pool: GOMAXPROCS workers pull tree indices from a
	// shared channel, so a 100-tree forest does not spawn 100 goroutines
	// each holding sort scratch. Every tree derives its RNG from Seed and
	// its own index, so the grown forest is byte-identical to a serial
	// (or differently scheduled) run.
	f.trees = make([]*node, f.cfg.Trees)
	workers := runtime.GOMAXPROCS(0)
	if workers > f.cfg.Trees {
		workers = f.cfg.Trees
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx := make([]int, len(x))
			scr := newSplitScratch(dim, len(x), f.cfg.Classes)
			for t := range work {
				rng := rand.New(rand.NewSource(f.cfg.Seed + int64(t)*104729))
				for i := range idx {
					idx[i] = rng.Intn(len(x))
				}
				f.trees[t] = f.grow(x, y, idx, mtry, 0, rng, scr)
			}
		}()
	}
	for t := 0; t < f.cfg.Trees; t++ {
		work <- t
	}
	close(work)
	wg.Wait()
	return nil
}

// splitScratch holds the per-worker buffers bestSplit reuses across every
// split of every tree the worker grows: the feature permutation, the
// (value, class) pairs under sort, and the left-side class counts. One
// worker previously allocated all three per split — a fresh rand.Perm slice
// plus two more for each of the thousands of nodes in a deep forest.
type splitScratch struct {
	perm       []int
	pairs      []pair
	leftCounts []int
}

// pair is one (feature value, class) sample under the split sweep's sort.
type pair struct {
	v float64
	c int
}

func newSplitScratch(dim, samples, classes int) *splitScratch {
	return &splitScratch{
		perm:       make([]int, dim),
		pairs:      make([]pair, samples),
		leftCounts: make([]int, classes),
	}
}

// fillPerm writes a uniform random permutation of [0, len(p)) into p,
// consuming exactly the rng draws rand.Perm consumes (one Intn(i+1) per
// position, same insertion scheme), so replacing rand.Perm with a reused
// buffer leaves every grown tree byte-identical.
func fillPerm(p []int, rng *rand.Rand) {
	for i := range p {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// grow recursively builds a tree over the samples in idx.
func (f *Forest) grow(x [][]float64, y []int, idx []int, mtry, depth int, rng *rand.Rand, scr *splitScratch) *node {
	counts := make([]int, f.cfg.Classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	majority, pure := majorityClass(counts, len(idx))

	if pure ||
		len(idx) < 2*f.cfg.MinLeaf ||
		(f.cfg.MaxDepth > 0 && depth >= f.cfg.MaxDepth) {
		return &node{leaf: true, class: majority}
	}

	feature, threshold, ok := f.bestSplit(x, y, idx, counts, mtry, rng, scr)
	if !ok {
		return &node{leaf: true, class: majority}
	}

	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < f.cfg.MinLeaf || len(right) < f.cfg.MinLeaf {
		return &node{leaf: true, class: majority}
	}
	return &node{
		feature:   feature,
		threshold: threshold,
		left:      f.grow(x, y, left, mtry, depth+1, rng, scr),
		right:     f.grow(x, y, right, mtry, depth+1, rng, scr),
	}
}

// bestSplit scans mtry random features for the split minimizing weighted
// Gini impurity, sweeping sorted values with incremental class counts. All
// buffers come from scr; the only allocations left on the split path are
// sort.Slice's closure.
func (f *Forest) bestSplit(x [][]float64, y []int, idx []int, counts []int, mtry int, rng *rand.Rand, scr *splitScratch) (feature int, threshold float64, ok bool) {
	bestGini := math.Inf(1)

	pairs := scr.pairs[:len(idx)]
	leftCounts := scr.leftCounts

	fillPerm(scr.perm, rng)
	for _, feat := range scr.perm[:mtry] {
		for k, i := range idx {
			pairs[k] = pair{v: x[i][feat], c: y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })

		for i := range leftCounts {
			leftCounts[i] = 0
		}
		nLeft := 0
		total := len(pairs)

		for k := 0; k < total-1; k++ {
			leftCounts[pairs[k].c]++
			nLeft++
			if pairs[k].v == pairs[k+1].v {
				continue // can't split between equal values
			}
			g := weightedGini(leftCounts, counts, nLeft, total)
			if g < bestGini {
				bestGini = g
				feature = feat
				threshold = (pairs[k].v + pairs[k+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// weightedGini computes the split's impurity from left-side class counts
// and the node's total class counts.
func weightedGini(leftCounts, totalCounts []int, nLeft, total int) float64 {
	nRight := total - nLeft
	var giniL, giniR float64 = 1, 1
	for c := range leftCounts {
		l := float64(leftCounts[c]) / float64(nLeft)
		r := float64(totalCounts[c]-leftCounts[c]) / float64(nRight)
		giniL -= l * l
		giniR -= r * r
	}
	return (float64(nLeft)*giniL + float64(nRight)*giniR) / float64(total)
}

// majorityClass returns the most frequent class (lowest index on ties) and
// whether the node is pure.
func majorityClass(counts []int, total int) (class int, pure bool) {
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best, counts[best] == total
}

// Predict majority-votes the trees (lowest class index on ties).
func (f *Forest) Predict(x []float64) (int, error) {
	if f.trees == nil {
		return 0, fmt.Errorf("forest: model not fitted")
	}
	if len(x) != f.dim {
		return 0, fmt.Errorf("forest: feature dim %d, model expects %d", len(x), f.dim)
	}
	votes := make([]int, f.cfg.Classes)
	for _, t := range f.trees {
		votes[classify(t, x)]++
	}
	best := 0
	for c, n := range votes {
		if n > votes[best] {
			best = c
		}
	}
	return best, nil
}

// Scores returns the fraction of trees voting for each class, one row per
// sample. Trees vote over the whole batch in parallel: each worker owns a
// private vote grid and walks a contiguous range of trees, and the grids
// are reduced in worker order, so the tallies (and the argmax tie-breaks)
// are identical to a serial vote.
func (f *Forest) Scores(x *linalg.Matrix) (*linalg.Matrix, error) {
	votes, err := f.voteBatch(x)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(len(f.trees))
	for i, v := range votes.Data {
		votes.Data[i] = v * inv
	}
	return votes, nil
}

// PredictBatch majority-votes the trees over every row of x.
func (f *Forest) PredictBatch(x *linalg.Matrix) ([]int, error) {
	votes, err := f.voteBatch(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, votes.Rows)
	for i := range out {
		row := votes.Row(i)
		best := 0
		for c, n := range row {
			if n > row[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out, nil
}

// voteBatch tallies per-sample, per-class tree votes for a feature batch.
func (f *Forest) voteBatch(x *linalg.Matrix) (*linalg.Matrix, error) {
	if f.trees == nil {
		return nil, fmt.Errorf("forest: model not fitted")
	}
	if x.Cols != f.dim {
		return nil, fmt.Errorf("forest: feature dim %d, model expects %d", x.Cols, f.dim)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(f.trees) {
		workers = len(f.trees)
	}
	if workers < 1 {
		workers = 1
	}
	grids := make([]*linalg.Matrix, workers)
	chunk := (len(f.trees) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(f.trees) {
			grids[w] = nil
			continue
		}
		hi := lo + chunk
		if hi > len(f.trees) {
			hi = len(f.trees)
		}
		grids[w] = linalg.NewMatrix(x.Rows, f.cfg.Classes)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Row views hoisted out of the hot loop; samples stay outermost
			// so each feature row is walked by every tree while hot.
			gRows := grids[w].RowSlices()
			xRows := x.RowSlices()
			trees := f.trees[lo:hi]
			for i, row := range xRows {
				g := gRows[i]
				for _, t := range trees {
					g[classify(t, row)]++
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	votes := linalg.NewMatrix(x.Rows, f.cfg.Classes)
	for _, g := range grids {
		if g == nil {
			continue
		}
		for i, v := range g.Data {
			votes.Data[i] += v
		}
	}
	return votes, nil
}

// ScoresSparse returns the per-class vote fractions for a CSR feature
// batch. Identical tallies to Scores on the dense form of x: votes are
// integers, exactly representable, so reduction order cannot drift.
func (f *Forest) ScoresSparse(x *linalg.SparseMatrix) (*linalg.Matrix, error) {
	votes, err := f.voteBatchSparse(x)
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(len(f.trees))
	for i, v := range votes.Data {
		votes.Data[i] = v * inv
	}
	return votes, nil
}

// PredictBatchSparse majority-votes the trees over every row of a CSR
// feature batch.
func (f *Forest) PredictBatchSparse(x *linalg.SparseMatrix) ([]int, error) {
	votes, err := f.voteBatchSparse(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, votes.Rows)
	for i := range out {
		row := votes.Row(i)
		best := 0
		for c, n := range row {
			if n > row[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out, nil
}

// voteBatchSparse tallies tree votes for a CSR batch. Unlike the dense
// path (workers split the TREES), workers here split the ROWS: each
// scatters its row once into a private dense scratch, walks every tree
// while the row is hot, then clears only the touched positions. Per-row
// tallies are independent, so any worker count produces the dense path's
// exact counts.
func (f *Forest) voteBatchSparse(x *linalg.SparseMatrix) (*linalg.Matrix, error) {
	if f.trees == nil {
		return nil, fmt.Errorf("forest: model not fitted")
	}
	if x.Cols != f.dim {
		return nil, fmt.Errorf("forest: feature dim %d, model expects %d", x.Cols, f.dim)
	}
	votes := linalg.NewMatrix(x.Rows, f.cfg.Classes)
	workers := runtime.GOMAXPROCS(0)
	if workers > x.Rows {
		workers = x.Rows
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (x.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < x.Rows; lo += chunk {
		hi := lo + chunk
		if hi > x.Rows {
			hi = x.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scratch := make([]float64, f.dim)
			for i := lo; i < hi; i++ {
				x.ScatterRow(i, scratch)
				g := votes.Row(i)
				for _, t := range f.trees {
					g[classify(t, scratch)]++
				}
				x.ClearRow(i, scratch)
			}
		}(lo, hi)
	}
	wg.Wait()
	return votes, nil
}

// classify walks one tree.
func classify(n *node, x []float64) int {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}
