package forest

import (
	"math/rand"
	"testing"

	"elevprivacy/internal/ml/linalg"
)

func blobs(centers [][]float64, perClass int, spread float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for c, center := range centers {
		for i := 0; i < perClass; i++ {
			p := make([]float64, len(center))
			for d := range center {
				p[d] = center[d] + rng.NormFloat64()*spread
			}
			x = append(x, p)
			y = append(y, c)
		}
	}
	return x, y
}

func testConfig(classes int) Config {
	cfg := DefaultConfig(classes)
	cfg.Trees = 25 // plenty for tests, faster
	return cfg
}

// TestRefitMatchesFresh pins the Fit contract shared by all four
// classifiers: refitting a used model is bit-identical to fitting a fresh
// one — tree RNGs derive from cfg.Seed and the tree index, never from
// state left by a previous fit.
func TestRefitMatchesFresh(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {6, 6}}, 20, 0.5, 9)
	refit, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := refit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := refit.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("vote share %d: refit %v, fresh %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Classes: 1, Trees: 10, MinLeaf: 1},
		{Classes: 2, Trees: 0, MinLeaf: 1},
		{Classes: 2, Trees: 10, MinLeaf: 0},
		{Classes: 2, Trees: 10, MinLeaf: 1, MaxDepth: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSeparableBlobs(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {6, 6}, {0, 6}}, 30, 0.5, 1)
	f, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range x {
		pred, err := f.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Errorf("accuracy = %f", acc)
	}
}

func TestNonLinearXOR(t *testing.T) {
	// XOR is where trees beat linear models.
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		label := 0
		if (a > 0) != (b > 0) {
			label = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range x {
		pred, _ := f.Predict(x[i])
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.9 {
		t.Errorf("XOR accuracy = %f, want >= 0.9", acc)
	}
}

func TestDeterministicTraining(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {3, 3}}, 25, 1.0, 3)
	probe := [][]float64{{1.5, 1.5}, {0.2, 2.8}, {-1, 0}, {3.2, 2.9}}

	run := func() []int {
		f, err := New(testConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(probe))
		for i, p := range probe {
			out[i], _ = f.Predict(p)
		}
		return out
	}
	a := run()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestPureNodeShortCircuits(t *testing.T) {
	// All one... needs 2 classes; use 2 classes but perfectly separated
	// single-feature data.
	x := [][]float64{{0}, {0.1}, {0.2}, {10}, {10.1}, {10.2}}
	y := []int{0, 0, 0, 1, 1, 1}
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if pred, _ := f.Predict([]float64{0.05}); pred != 0 {
		t.Errorf("pred = %d", pred)
	}
	if pred, _ := f.Predict([]float64{9.9}); pred != 1 {
		t.Errorf("pred = %d", pred)
	}
}

func TestConstantFeatures(t *testing.T) {
	// Identical feature vectors for both classes: no split possible; the
	// forest must fall back to majority leaves without crashing.
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 0, 0, 1}
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := f.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0 {
		t.Errorf("majority pred = %d, want 0", pred)
	}
}

func TestMaxDepthBounds(t *testing.T) {
	x, y := blobs([][]float64{{0}, {1}}, 50, 2.0, 4) // heavily overlapped
	cfg := testConfig(2)
	cfg.MaxDepth = 1
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Depth-1 trees have at most 2 leaves; just verify they predict.
	if _, err := f.Predict([]float64{0.5}); err != nil {
		t.Fatal(err)
	}
	maxDepth := 0
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n.leaf {
			if d > maxDepth {
				maxDepth = d
			}
			return
		}
		walk(n.left, d+1)
		walk(n.right, d+1)
	}
	for _, tree := range f.trees {
		walk(tree, 0)
	}
	if maxDepth > 1 {
		t.Errorf("tree depth %d exceeds MaxDepth 1", maxDepth)
	}
}

func TestFitPredictValidation(t *testing.T) {
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Predict([]float64{1}); err == nil {
		t.Error("predict before fit accepted")
	}
	if err := f.Fit([][]float64{{1}}, []int{5}); err == nil {
		t.Error("bad label accepted")
	}
	x, y := blobs([][]float64{{0}, {5}}, 5, 0.1, 5)
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong-dim predict accepted")
	}
}

func TestWeightedGini(t *testing.T) {
	// Perfect split: left all class 0, right all class 1 -> gini 0.
	left := []int{5, 0}
	total := []int{5, 5}
	if g := weightedGini(left, total, 5, 10); g != 0 {
		t.Errorf("perfect split gini = %f", g)
	}
	// Worst split: both sides 50/50 -> gini 0.5.
	left = []int{2, 2}
	total = []int{4, 4}
	if g := weightedGini(left, total, 4, 8); g != 0.5 {
		t.Errorf("mixed split gini = %f", g)
	}
}
