package forest

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

func benchFitted(b *testing.B, n int) (*Forest, [][]float64, *linalg.Matrix) {
	b.Helper()
	centers := [][]float64{{0, 0, 0, 0}, {5, 0, 5, 0}, {0, 5, 0, 5}}
	x, y := blobs(centers, n/3, 1.0, 1)
	cfg := testConfig(3)
	cfg.Trees = 50
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		b.Fatal(err)
	}
	return f, x, xm
}

func BenchmarkFit(b *testing.B) {
	x, y := blobs([][]float64{{0, 0, 0, 0}, {5, 0, 5, 0}, {0, 5, 0, 5}}, 60, 1.0, 1)
	cfg := testConfig(3)
	cfg.Trees = 50
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictLoop(b *testing.B) {
	f, x, _ := benchFitted(b, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			if _, err := f.Predict(x[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	f, _, xm := benchFitted(b, 240)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.PredictBatch(xm); err != nil {
			b.Fatal(err)
		}
	}
}
