package forest

import (
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// padSparse embeds each sample in a wider feature space with zero columns,
// so the CSR form actually skips entries.
func padSparse(x [][]float64, dim int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		wide := make([]float64, dim)
		for j, v := range row {
			wide[j*3] = v
		}
		out[i] = wide
	}
	return out
}

// TestSparseMatchesDense pins the SparseBatchClassifier contract: voting
// over scatter/clear scratch rows must reproduce the dense batch vote
// exactly — tree traversal compares the same feature values either way.
func TestSparseMatchesDense(t *testing.T) {
	raw, y := blobs([][]float64{{0, 0}, {4, 0}, {0, 4}}, 20, 0.6, 31)
	x := padSparse(raw, 10)
	cfg := DefaultConfig(3)
	cfg.Trees = 25
	clf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	sp := linalg.SparseFromDense(xm)

	dense, err := clf.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := clf.ScoresSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense.Data {
		if dense.Data[i] != sparse.Data[i] {
			t.Fatalf("vote share %d: dense %v, sparse %v", i, dense.Data[i], sparse.Data[i])
		}
	}

	dPreds, err := clf.PredictBatch(xm)
	if err != nil {
		t.Fatal(err)
	}
	sPreds, err := clf.PredictBatchSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dPreds {
		if dPreds[i] != sPreds[i] {
			t.Fatalf("sample %d: dense class %d, sparse class %d", i, dPreds[i], sPreds[i])
		}
	}
}

func TestSparsePredictValidation(t *testing.T) {
	clf, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	one := linalg.SparseFromDense(linalg.NewMatrix(1, 2))
	if _, err := clf.PredictBatchSparse(one); err == nil {
		t.Error("sparse predict before fit accepted")
	}
	x, y := blobs([][]float64{{0, 0}, {5, 5}}, 8, 0.3, 32)
	cfg := DefaultConfig(2)
	cfg.Trees = 5
	clf, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	wrong := linalg.SparseFromDense(linalg.NewMatrix(2, 5))
	if _, err := clf.PredictBatchSparse(wrong); err == nil {
		t.Error("wrong-dim sparse batch accepted")
	}
}
