package forest

import (
	"math"
	"testing"

	"elevprivacy/internal/ml/linalg"
)

// TestPredictBatchMatchesPredict pins the batch contract: the parallel
// per-tree vote must reproduce per-sample Predict (including the
// lowest-index tie-break) on every row.
func TestPredictBatchMatchesPredict(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {5, 0}, {0, 5}}, 20, 1.2, 7)
	f, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := f.PredictBatch(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		want, err := f.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("sample %d: batch %d, serial %d", i, batch[i], want)
		}
	}
}

// TestScoresAreVoteFractions checks each Scores row sums to 1 and that the
// argmax matches PredictBatch.
func TestScoresAreVoteFractions(t *testing.T) {
	x, y := blobs([][]float64{{0, 0}, {4, 4}}, 15, 0.8, 9)
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xm, err := linalg.FromRows(x)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := f.Scores(xm)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := f.PredictBatch(xm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < scores.Rows; i++ {
		var sum float64
		for _, v := range scores.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("vote fraction %g out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d fractions sum to %g", i, sum)
		}
		if linalg.ArgMax(scores.Row(i)) != preds[i] {
			t.Errorf("row %d: scores argmax %d, batch %d", i, linalg.ArgMax(scores.Row(i)), preds[i])
		}
	}
}

func TestPredictBatchValidation(t *testing.T) {
	f, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.PredictBatch(linalg.NewMatrix(1, 1)); err == nil {
		t.Error("batch predict before fit accepted")
	}
}
