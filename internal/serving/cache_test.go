package serving

import (
	"bytes"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

func fillWith(b []byte, calls *atomic.Int64) func() ([]byte, error) {
	return func() ([]byte, error) {
		if calls != nil {
			calls.Add(1)
		}
		return b, nil
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(1 << 20)
	var calls atomic.Int64
	v, hit, err := c.Get("k", fillWith([]byte("tile-bytes"), &calls))
	if err != nil || hit || string(v) != "tile-bytes" {
		t.Fatalf("first get: v=%q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Get("k", fillWith([]byte("other"), &calls))
	if err != nil || !hit || string(v) != "tile-bytes" {
		t.Fatalf("second get: v=%q hit=%v err=%v", v, hit, err)
	}
	if calls.Load() != 1 {
		t.Errorf("fill ran %d times, want 1", calls.Load())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	// Budget for exactly two 4-byte values; inserting a third evicts the
	// least recently used.
	c := NewCache(8)
	for _, k := range []string{"a", "b"} {
		if _, _, err := c.Get(k, fillWith([]byte("xxxx"), nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if _, hit, _ := c.Get("a", fillWith(nil, nil)); !hit {
		t.Fatal("a not resident")
	}
	if _, _, err := c.Get("c", fillWith([]byte("yyyy"), nil)); err != nil {
		t.Fatal(err)
	}
	if !c.Peek("a") || c.Peek("b") || !c.Peek("c") {
		t.Errorf("residency a=%v b=%v c=%v, want a and c only",
			c.Peek("a"), c.Peek("b"), c.Peek("c"))
	}
	if c.Bytes() != 8 || c.Len() != 2 {
		t.Errorf("bytes=%d len=%d, want 8 and 2", c.Bytes(), c.Len())
	}
}

func TestCacheOversizeValueNotCached(t *testing.T) {
	c := NewCache(4)
	big := bytes.Repeat([]byte("z"), 16)
	v, hit, err := c.Get("big", fillWith(big, nil))
	if err != nil || hit || len(v) != 16 {
		t.Fatalf("oversize get: len=%d hit=%v err=%v", len(v), hit, err)
	}
	if c.Peek("big") || c.Bytes() != 0 {
		t.Error("oversize value was cached")
	}
}

func TestCacheFillErrorNotCached(t *testing.T) {
	c := NewCache(1 << 10)
	boom := errors.New("rasterize failed")
	if _, _, err := c.Get("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Peek("k") {
		t.Fatal("error result was cached")
	}
	// Next Get retries the fill and can succeed.
	v, hit, err := c.Get("k", fillWith([]byte("ok"), nil))
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("retry get: v=%q hit=%v err=%v", v, hit, err)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(1 << 20)
	var calls atomic.Int64
	gate := make(chan struct{})
	fill := func() ([]byte, error) {
		calls.Add(1)
		<-gate // hold every concurrent caller on one in-progress fill
		return []byte("slow-tile"), nil
	}

	const workers = 16
	var wg sync.WaitGroup
	results := make([]string, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Get("hot", fill)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = string(v)
		}(i)
	}
	// Let workers pile up on the flight, then release the fill.
	for calls.Load() == 0 {
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("fill ran %d times under concurrency, want 1", calls.Load())
	}
	for i, r := range results {
		if r != "slow-tile" {
			t.Fatalf("worker %d got %q", i, r)
		}
	}
}

func TestCacheConcurrentChurn(t *testing.T) {
	// Small budget forces constant eviction while many goroutines hammer
	// overlapping keys — the race detector gates this.
	c := NewCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := "k-" + strconv.Itoa(i%13)
				v, _, err := c.Get(k, fillWith([]byte("value-"+k), nil))
				if err != nil {
					t.Errorf("get %s: %v", k, err)
					return
				}
				if string(v) != "value-"+k {
					t.Errorf("get %s returned %q", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
