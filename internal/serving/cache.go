// Package serving holds the in-process caching layer the sharded serving
// tier puts in front of expensive render paths: a size-bounded LRU over
// immutable response bytes with singleflight fill dedup. When a consistent-
// hash pool routes every request for a tile or profile to the same shard,
// that shard's Cache owns the key's working set — the first request pays the
// rasterize/sample cost, every later one is a memory read, and a thundering
// herd on a cold key collapses into one fill.
//
// Values are immutable by contract (DEM tiles never change once cut, profile
// responses are pure functions of their query), so there is no invalidation
// path at all: entries leave only by LRU eviction.
package serving

import (
	"container/list"
	"sync"

	"elevprivacy/internal/obs"
)

// Cache is a byte-bounded LRU keyed by string, with singleflight dedup on
// fills. Safe for concurrent use. The []byte values are shared, not copied:
// callers must treat both the fill result and the returned slice as
// read-only.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	flights  map[string]*flight

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

type entry struct {
	key   string
	value []byte
}

// flight is one in-progress fill; concurrent Gets for the same key wait on
// done and share the leader's result instead of filling again.
type flight struct {
	done  chan struct{}
	value []byte
	err   error
}

// CacheOption configures a Cache.
type CacheOption func(*Cache)

// WithCacheMetrics publishes hit/miss/eviction counters into the process
// obs registry under the given cache name:
//
//	elevpriv_serving_cache_hits_total{cache=...}
//	elevpriv_serving_cache_misses_total{cache=...}
//	elevpriv_serving_cache_evictions_total{cache=...}
//
// A hit is any Get served without running fill (including waiters that
// joined an in-progress flight); a miss is a fill actually run.
func WithCacheMetrics(name string) CacheOption {
	return func(c *Cache) {
		label := `{cache="` + name + `"}`
		c.hits = obs.GetCounter("elevpriv_serving_cache_hits_total" + label)
		c.misses = obs.GetCounter("elevpriv_serving_cache_misses_total" + label)
		c.evictions = obs.GetCounter("elevpriv_serving_cache_evictions_total" + label)
	}
}

// NewCache builds a cache bounded to maxBytes of values (keys and
// bookkeeping are not charged). maxBytes below 1 behaves as 1, i.e. an
// effectively empty cache that still dedups concurrent fills.
func NewCache(maxBytes int64, opts ...CacheOption) *Cache {
	if maxBytes < 1 {
		maxBytes = 1
	}
	c := &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Get returns the cached value for key, running fill at most once across
// concurrent callers when the key is cold. The second return reports whether
// this caller was served from cache or a shared flight (true) or ran the
// fill itself (false). Fill errors are returned to every waiter and are not
// cached — the next Get retries.
func (c *Cache) Get(key string, fill func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*entry).value
		c.mu.Unlock()
		if c.hits != nil {
			c.hits.Inc()
		}
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if c.hits != nil && f.err == nil {
			c.hits.Inc()
		}
		return f.value, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	if c.misses != nil {
		c.misses.Inc()
	}
	f.value, f.err = fill()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.store(key, f.value)
	}
	c.mu.Unlock()
	close(f.done)
	return f.value, false, f.err
}

// Peek reports whether key is resident without touching LRU order or
// counters (used by tests and stats endpoints).
func (c *Cache) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Len reports how many entries are resident.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the total size of resident values.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// store inserts under c.mu, evicting from the LRU tail until the new entry
// fits. A value larger than the whole budget is not cached at all — caching
// it would just flush everything else for a single entry.
func (c *Cache) store(key string, value []byte) {
	size := int64(len(value))
	if size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		// A racing flight (possible when an entry was evicted mid-flight and
		// refilled) already stored the key; keep the resident value.
		c.ll.MoveToFront(el)
		return
	}
	for c.curBytes+size > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ev := tail.Value.(*entry)
		c.ll.Remove(tail)
		delete(c.items, ev.key)
		c.curBytes -= int64(len(ev.value))
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, value: value})
	c.curBytes += size
}
