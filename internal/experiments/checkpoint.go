package experiments

import (
	"context"
	"fmt"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/obs"
	"elevprivacy/internal/scenario"
)

// Per-experiment checkpointing: a full suite run is hours of CPU at paper
// scale, and a crash (or a ctrl-C) used to restart it from the first table.
// RunSuite journals every finished experiment's rendered Table under a key
// that binds it to the exact configuration, so a resumed run replays the
// finished tables byte-identically and only computes what is missing.

// configFingerprint collapses a Config into a short stable token for
// journal keys. Any knob change — scale, seed, folds — changes the
// fingerprint, so checkpoints from a differently-configured run are never
// misapplied to this one. It is scenario.Fingerprint applied to the Config:
// the same construction (and the same pinned outputs — see the golden test)
// the orchestrator uses for its stage keys, so a suite journal and a
// scenario cache can never drift apart on what "the same config" means.
func configFingerprint(cfg Config) string {
	return scenario.Fingerprint(cfg)
}

// suiteKey names one experiment's checkpoint unit.
func suiteKey(cfg Config, name string) string {
	return fmt.Sprintf("exp/%s@%s", name, configFingerprint(cfg))
}

// SuiteResult is one experiment's outcome as the suite progresses.
type SuiteResult struct {
	// Runner is the experiment that produced this result.
	Runner Runner
	// Table is the rendered artifact; nil when Err is set or the unit was
	// skipped by a drain.
	Table *Table
	// Restored is true when Table was replayed from the checkpoint journal
	// instead of recomputed.
	Restored bool
	// Elapsed is the compute time (0 when restored).
	Elapsed time.Duration
	// Err is the experiment's failure: a real error, a recovered panic
	// (*durable.PanicError), or durable.ErrInterrupted for units skipped by
	// a drain.
	Err error
}

// RunSuite executes the runners in order with per-experiment checkpoints.
// journal may be nil (no durability: every experiment recomputes). drain,
// when non-nil and closed, stops between experiments — the one in flight
// finishes, the journal flushes, and the remaining units report
// durable.ErrInterrupted in the report. A panicking experiment is
// quarantined: its SuiteResult carries the *durable.PanicError while the
// rest of the suite keeps running. emit is called once per runner, in
// order, for restored and fresh results alike.
//
// RunSuite is a thin adapter over the scenario scheduler: each runner
// becomes one dependency-free work unit, executed sequentially (Workers 1)
// so the classic CLI output stays byte-identical to the pre-orchestrator
// implementation. The scheduler supplies the durability contract —
// journaled units restore instead of re-running, panics quarantine, drains
// stop between units — that the sequential durable.Runner used to provide
// here directly.
func RunSuite(ctx context.Context, cfg Config, runners []Runner, journal *durable.Journal,
	drain <-chan struct{}, emit func(SuiteResult)) (*durable.Report, error) {

	byKey := make(map[string]Runner, len(runners))
	units := make([]scenario.Unit, 0, len(runners))
	keys := make([]string, 0, len(runners))
	for _, r := range runners {
		r := r
		k := suiteKey(cfg, r.Name)
		byKey[k] = r
		keys = append(keys, k)
		units = append(units, scenario.Unit{
			Key: k,
			Run: func(context.Context) (any, error) {
				start := time.Now()
				table, err := r.Run(cfg)
				if err != nil {
					// Failures (and panics, recovered by the scheduler) are
					// emitted from the report below.
					return nil, err
				}
				if emit != nil {
					emit(SuiteResult{Runner: r, Table: table, Elapsed: time.Since(start)})
				}
				return table, nil
			},
			Restore: func() error {
				var table Table
				ok, err := journal.Get(k, &table)
				if err != nil {
					return fmt.Errorf("experiments: restoring %s: %w", r.Name, err)
				}
				if !ok {
					return fmt.Errorf("experiments: checkpoint for %s vanished mid-run", r.Name)
				}
				if emit != nil {
					emit(SuiteResult{Runner: r, Table: &table, Restored: true})
				}
				return nil
			},
		})
	}

	// The suite span is the trace's root: each experiment's "unit/exp/..."
	// span (recorded by the scheduler) nests under it.
	ctx, span := obs.StartSpan(ctx, "suite")
	span.SetAttr("experiments", fmt.Sprint(len(runners)))
	defer span.End()

	sched := &scenario.Scheduler{Journal: journal, Workers: 1, Drain: drain}
	report, err := sched.Run(ctx, units)
	if err != nil {
		return report, err
	}

	// Surface drained/failed units to the emitter so the caller's output
	// accounts for every runner, then hand back the report.
	if emit != nil {
		for i, u := range report.Units {
			if u.Err != nil {
				emit(SuiteResult{Runner: byKey[keys[i]], Err: u.Err})
			}
		}
	}
	return report, nil
}
