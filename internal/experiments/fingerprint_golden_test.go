package experiments

import "testing"

// The fingerprints below are pinned on purpose: they are the compatibility
// surface for every on-disk journal key ("exp/<name>@<fp>") and scenario
// cache key. If this test fails, a refactor changed how configs hash —
// renamed a field, reordered the struct, switched the hash — and every
// existing checkpoint and cached artifact silently stops matching. Either
// revert the change or accept the invalidation explicitly by updating the
// table AND noting the break in CHANGES.md.
func TestConfigFingerprintGolden(t *testing.T) {
	seed42 := Default()
	seed42.Seed = 42
	userHalf := Default()
	userHalf.UserScale = 0.5

	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"default", Default(), "be7c3a674b6fa2da"},
		{"quick", Quick(), "09a093e4da2b49d2"},
		{"default-seed-42", seed42, "37045f853dab9015"},
		{"default-userscale-0.5", userHalf, "57eed820ccab56e0"},
		{"zero-value", Config{}, "449b28c21359085c"},
	}
	for _, tc := range cases {
		if got := configFingerprint(tc.cfg); got != tc.want {
			t.Errorf("configFingerprint(%s) = %s, want %s — journal/cache keys changed, see comment above",
				tc.name, got, tc.want)
		}
	}
}

// Fingerprints must differ when any knob differs — otherwise two configs
// share checkpoints they must not share.
func TestConfigFingerprintSensitivity(t *testing.T) {
	base := Default()
	mutations := map[string]func(*Config){
		"UserScale":      func(c *Config) { c.UserScale *= 2 },
		"MinedScale":     func(c *Config) { c.MinedScale *= 2 },
		"ProfileSamples": func(c *Config) { c.ProfileSamples++ },
		"MinPerClass":    func(c *Config) { c.MinPerClass++ },
		"NGram":          func(c *Config) { c.NGram++ },
		"MaxFeatures":    func(c *Config) { c.MaxFeatures++ },
		"CNNEpochs":      func(c *Config) { c.CNNEpochs++ },
		"Folds10":        func(c *Config) { c.Folds10++ },
		"Folds5":         func(c *Config) { c.Folds5++ },
		"Seed":           func(c *Config) { c.Seed++ },
	}
	want := configFingerprint(base)
	for field, mutate := range mutations {
		c := base
		mutate(&c)
		if configFingerprint(c) == want {
			t.Errorf("changing %s did not change the fingerprint", field)
		}
	}
}
