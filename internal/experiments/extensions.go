package experiments

import (
	"fmt"

	"elevprivacy"
	"elevprivacy/internal/dataset"
	"elevprivacy/internal/defense"
	"elevprivacy/internal/eval"
	"elevprivacy/internal/ml"
	"elevprivacy/internal/ml/mlp"
	"elevprivacy/internal/spectral"
	"elevprivacy/internal/textrep"
)

// ExtensionDefenses evaluates the countermeasures the paper's conclusion
// proposes: for each defense, the TM-3 attack accuracy after applying it
// and the utility cost (relative error of the shared total gain).
func ExtensionDefenses(cfg Config) (*Table, error) {
	base, err := cfg.ablationDataset() // balanced 10-class TM-3
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Extension E1",
		Title:  "Defense trade-off: TM-3 MLP accuracy (%) vs utility cost",
		Header: []string{"defense", "attack accuracy", "gain error %", "chance"},
		Notes: []string{
			"the paper's conclusion proposes sharing route statistics instead of profiles",
			"zero-baseline and summary-stats remove absolute altitude, the attack's main signal",
		},
	}
	defenses := []defense.Defense{
		defense.Noop{},
		defense.GaussianNoise{SigmaMeters: 2},
		defense.GaussianNoise{SigmaMeters: 8},
		defense.Quantizer{StepMeters: 10},
		defense.Quantizer{StepMeters: 50},
		defense.ZeroBaseline{},
		defense.SummaryStats{},
	}
	mlpCfg := cfg.textAttackConfig(elevprivacy.ClassifierMLP)
	chance := pct(1.0 / float64(len(base.Labels())))
	for _, def := range defenses {
		defended := defense.ApplyToDataset((*dataset.Dataset)(base), def, cfg.Seed+11)
		m, err := elevprivacy.CrossValidateText((*elevprivacy.Dataset)(defended), mlpCfg, cfg.Folds10)
		if err != nil {
			return nil, fmt.Errorf("experiments: defense %s: %w", def.Name(), err)
		}
		gainErr, err := defense.GainError((*dataset.Dataset)(base), defended, def)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			def.Name(), pct(m.Accuracy), pct(gainErr), chance,
		})
	}
	return t, nil
}

// ExtensionSpectralBaseline reproduces the comparison the paper's abstract
// summarizes: "establishing that simple features of elevation profiles,
// e.g., spectral features, are insufficient". The pure spectral baseline
// is mean-invariant and collapses; the paper's representations win.
func ExtensionSpectralBaseline(cfg Config) (*Table, error) {
	d, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	signals := make([][]float64, 0, d.Len())
	labelNames := make([]string, 0, d.Len())
	for i := range d.Samples {
		signals = append(signals, d.Samples[i].Elevations)
		labelNames = append(labelNames, d.Samples[i].Label)
	}
	enc, err := ml.NewLabelEncoder(labelNames)
	if err != nil {
		return nil, err
	}
	y, err := enc.EncodeAll(labelNames)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Extension E2",
		Title:  "Spectral baseline vs the paper's representations (TM-3, MLP, 10 classes)",
		Header: []string{"features", "accuracy", "recall", "F1"},
		Notes: []string{
			"pure spectral features are invariant to absolute altitude and fail, which is",
			"why the paper devises the text-like and image-like representations",
		},
	}

	spectralCV := func(name string, fcfg spectral.FeatureConfig) error {
		x, err := spectral.FeaturesAll(signals, fcfg)
		if err != nil {
			return err
		}
		m, err := eval.CrossValidate(x, y, enc.Len(), cfg.Folds10, cfg.Seed, func() (ml.Classifier, error) {
			c := mlp.DefaultConfig(enc.Len())
			c.Seed = cfg.Seed
			return mlp.New(c)
		})
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{name, pct(m.Accuracy), pct(m.Recall), pct(m.F1)})
		return nil
	}

	if err := spectralCV("spectral (pure)", spectral.DefaultFeatureConfig()); err != nil {
		return nil, fmt.Errorf("experiments: spectral baseline: %w", err)
	}
	withStats := spectral.DefaultFeatureConfig()
	withStats.IncludeStats = true
	if err := spectralCV("spectral + stats", withStats); err != nil {
		return nil, fmt.Errorf("experiments: spectral+stats: %w", err)
	}

	m, err := elevprivacy.CrossValidateText(d, cfg.textAttackConfig(elevprivacy.ClassifierMLP), cfg.Folds10)
	if err != nil {
		return nil, fmt.Errorf("experiments: text comparison: %w", err)
	}
	t.Rows = append(t.Rows, []string{"text-like n-grams (paper)", pct(m.Accuracy), pct(m.Recall), pct(m.F1)})
	return t, nil
}

// ExtensionConfusionAnalysis pools the TM-3 cross-validation confusion
// matrix and reports which city pairs the attack actually confuses —
// flat coastal cities blur together while mountain cities stand alone.
func ExtensionConfusionAnalysis(cfg Config) (*Table, error) {
	d, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	signals := make([][]float64, 0, d.Len())
	labelNames := make([]string, 0, d.Len())
	for i := range d.Samples {
		signals = append(signals, d.Samples[i].Elevations)
		labelNames = append(labelNames, d.Samples[i].Label)
	}
	enc, err := ml.NewLabelEncoder(labelNames)
	if err != nil {
		return nil, err
	}
	y, err := enc.EncodeAll(labelNames)
	if err != nil {
		return nil, err
	}

	tc := cfg.textAttackConfig(elevprivacy.ClassifierMLP)
	pipe, err := textrep.NewPipeline(signals, textrep.PipelineConfig{
		Discretizer:  textrep.FloorDiscretizer,
		NGram:        tc.NGram,
		MinFrequency: tc.MinFrequency,
		MaxFeatures:  tc.MaxFeatures,
	})
	if err != nil {
		return nil, err
	}
	cm, err := eval.CrossValidateConfusion(pipe.FeaturesAll(signals), y, enc.Len(), cfg.Folds10, cfg.Seed,
		func() (ml.Classifier, error) {
			c := mlp.DefaultConfig(enc.Len())
			c.Seed = cfg.Seed
			return mlp.New(c)
		})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "Extension E3",
		Title:  "TM-3 confusion analysis: most-confused city pairs (MLP, pooled CV)",
		Header: []string{"actual", "predicted as", "count", "share of actual %"},
		Notes: []string{
			fmt.Sprintf("pooled accuracy %.2f%% over %d predictions", cm.Accuracy()*100, cm.Total()),
			"flat coastal cities are mutually confusable; distinctive terrains are not",
		},
	}
	counts := d.CountByLabel()
	for _, conf := range cm.TopConfusions(8) {
		actual, err := enc.Decode(conf.Actual)
		if err != nil {
			return nil, err
		}
		predicted, err := enc.Decode(conf.Predicted)
		if err != nil {
			return nil, err
		}
		share := float64(conf.Count) / float64(counts[actual])
		t.Rows = append(t.Rows, []string{
			actual, predicted, fmt.Sprintf("%d", conf.Count), pct(share),
		})
	}
	return t, nil
}
