package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parsePct reads a table cell produced by pct().
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage: %v", cell, err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tbl := &Table{
		ID:     "Table X",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"Table X", "long-column", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestAllRunnersRegistered(t *testing.T) {
	runners := All()
	if len(runners) != 20 {
		t.Fatalf("registered %d runners, want 20 (12 paper artifacts + 5 ablations + 3 extensions)", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if r.Run == nil {
			t.Errorf("%s has nil Run", r.ID)
		}
		if seen[r.Name] {
			t.Errorf("duplicate runner name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if _, err := ByName("tm3-text"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown runner accepted")
	}
}

func TestFigure1Survey(t *testing.T) {
	tbl, err := Figure1Survey(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 14 {
		t.Fatalf("rows = %d, want 14 (4+4+3+3)", len(tbl.Rows))
	}
}

func TestTable1UserDataset(t *testing.T) {
	tbl, err := Table1UserDataset(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 regions", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "Washington DC" || tbl.Rows[0][2] != "366" {
		t.Errorf("first row = %v", tbl.Rows[0])
	}
	// The overlap note must carry a measured percentage.
	foundOverlap := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "overlap") {
			foundOverlap = true
		}
	}
	if !foundOverlap {
		t.Error("missing overlap note")
	}
}

func TestTable2And3Datasets(t *testing.T) {
	tbl, err := Table2CityDataset(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Fatalf("Table II rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "New York City" {
		t.Errorf("Table II order: %v", tbl.Rows[0])
	}

	tbl3, err := Table3BoroughDataset(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl3.Rows) != 22 {
		t.Fatalf("Table III rows = %d, want 22 boroughs", len(tbl3.Rows))
	}
}

// TestTable4TM1TextQuick runs the TM-1 experiment at smoke scale and
// checks the paper's qualitative claim: user-specific attacks succeed far
// above chance.
func TestTable4TM1TextQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners are slow")
	}
	tbl, err := Table4TM1Text(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want C in {2,3,4}", len(tbl.Rows))
	}
	// Accuracy columns are 2..7; chance for C=2 is 50 %.
	twoClass := tbl.Rows[0]
	for _, cell := range twoClass[2:] {
		if parsePct(t, cell) < 60 {
			t.Errorf("2-class TM-1 accuracy %s below 60%%: %v", cell, twoClass)
		}
	}
	t.Logf("\n%s", tbl)
}

// TestTable5TM3TextQuick checks Table V's shape at smoke scale.
func TestTable5TM3TextQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners are slow")
	}
	tbl, err := Table5TM3Text(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want C in {3,5,7,8,10}", len(tbl.Rows))
	}
	// MLP accuracy (col 8) must beat chance (100/C) with clear margin.
	for _, row := range tbl.Rows {
		c := parsePct(t, row[0]) // C column is a small integer
		acc := parsePct(t, row[8])
		if acc < 100/c+15 {
			t.Errorf("C=%v: MLP accuracy %v barely above chance", row[0], acc)
		}
	}
	t.Logf("\n%s", tbl)
}

// TestTable6OverlapImprovesOverTable5 checks the §IV-A1 claim at smoke
// scale: overlap simulation lifts MLP accuracy on the full 10-class row.
func TestTable6OverlapImprovesOverTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners are slow")
	}
	cfg := Quick()
	t5, err := Table5TM3Text(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t6, err := Table6TM3OverlapSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := parsePct(t, t5.Rows[len(t5.Rows)-1][8])
	sim := parsePct(t, t6.Rows[len(t6.Rows)-1][8])
	t.Logf("10-class MLP accuracy: %.1f -> %.1f with overlap", base, sim)
	if sim < base-8 {
		t.Errorf("overlap simulation should not materially hurt: %.1f -> %.1f", base, sim)
	}
}

func TestEpochSweepShape(t *testing.T) {
	cfg := Default()
	cfg.CNNEpochs = 16
	sweep := cfg.epochSweep()
	if len(sweep) != 3 || sweep[0] != 8 || sweep[1] != 16 || sweep[2] != 32 {
		t.Errorf("sweep = %v", sweep)
	}
	cfg.CNNEpochs = 1
	if got := cfg.epochSweep()[0]; got != 1 {
		t.Errorf("halved epoch floor = %d", got)
	}
}

func TestBalancedTopClassesValidation(t *testing.T) {
	d, err := Quick().tm1Dataset()
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"Washington DC", "Orlando", "New York City", "San Diego"}
	if _, _, err := balancedTopClasses(d, order, 1, 1); err == nil {
		t.Error("1 class accepted")
	}
	if _, _, err := balancedTopClasses(d, order, 9, 1); err == nil {
		t.Error("more classes than labels accepted")
	}
	bal, perClass, err := balancedTopClasses(d, order, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := bal.CountByLabel()
	if len(counts) != 2 {
		t.Fatalf("labels = %v", counts)
	}
	for _, n := range counts {
		if n != perClass {
			t.Errorf("unbalanced: %v (perClass %d)", counts, perClass)
		}
	}
}

// TestExtensionDefensesQuick checks the defense trade-off's headline: the
// altitude-removing defenses cut attack accuracy relative to no defense.
func TestExtensionDefensesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners are slow")
	}
	tbl, err := ExtensionDefenses(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 defenses", len(tbl.Rows))
	}
	noop := parsePct(t, tbl.Rows[0][1])
	var zeroBaseline float64
	for _, row := range tbl.Rows {
		if row[0] == "zero-baseline" {
			zeroBaseline = parsePct(t, row[1])
		}
	}
	t.Logf("\n%s", tbl)
	if zeroBaseline > noop+5 {
		t.Errorf("zero-baseline accuracy %.1f should not exceed undefended %.1f", zeroBaseline, noop)
	}
	// Noop and zero-baseline preserve gain exactly.
	if e := parsePct(t, tbl.Rows[0][2]); e > 0.01 {
		t.Errorf("noop gain error = %f", e)
	}
}

// TestExtensionSpectralBaselineQuick checks the abstract's claim: simple
// spectral features underperform the text-like representation.
func TestExtensionSpectralBaselineQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners are slow")
	}
	tbl, err := ExtensionSpectralBaseline(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	spectralAcc := parsePct(t, tbl.Rows[0][1])
	textAcc := parsePct(t, tbl.Rows[2][1])
	t.Logf("\n%s", tbl)
	if textAcc <= spectralAcc {
		t.Errorf("text representation (%.1f) must beat pure spectral (%.1f)", textAcc, spectralAcc)
	}
}
