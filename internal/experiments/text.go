package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"elevprivacy"
	"elevprivacy/internal/dataset"
)

// textKinds is the paper's classifier lineup for text-like features.
var textKinds = []elevprivacy.ClassifierKind{
	elevprivacy.ClassifierSVM,
	elevprivacy.ClassifierRandomForest,
	elevprivacy.ClassifierMLP,
}

// textAttackConfig builds the shared text-attack settings.
func (c Config) textAttackConfig(kind elevprivacy.ClassifierKind) elevprivacy.TextAttackConfig {
	tc := elevprivacy.DefaultTextAttackConfig(kind)
	tc.NGram = c.NGram
	tc.MaxFeatures = c.MaxFeatures
	tc.Seed = c.Seed
	return tc
}

// balancedTopClasses returns the dataset restricted to the first `classes`
// labels of labelOrder, balanced at the smallest included class size —
// exactly the paper's bias-mitigation protocol for Tables IV and V. The
// returned perClass is the balanced size (the tables' S column).
func balancedTopClasses(d *elevprivacy.Dataset, labelOrder []string, classes int, seed int64) (*elevprivacy.Dataset, int, error) {
	if classes < 2 || classes > len(labelOrder) {
		return nil, 0, fmt.Errorf("experiments: %d classes from %d labels", classes, len(labelOrder))
	}
	included := labelOrder[:classes]
	sub := (*dataset.Dataset)(d).Filter(included...)

	perClass := -1
	for label, n := range sub.CountByLabel() {
		_ = label
		if perClass < 0 || n < perClass {
			perClass = n
		}
	}
	if perClass < 2 {
		return nil, 0, fmt.Errorf("experiments: smallest class has %d samples", perClass)
	}
	bal, err := sub.Balanced(perClass, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, 0, err
	}
	return bal, perClass, nil
}

// Table4TM1Text reproduces Table IV: TM-1 prediction accuracy on the
// user-specific dataset for SVM/RFC/MLP under 5- and 10-fold CV at
// {2, 3, 4} classes.
func Table4TM1Text(cfg Config) (*Table, error) {
	d, err := elevprivacy.NewUserSpecificDataset(cfg.userConfig())
	if err != nil {
		return nil, err
	}
	// Table I order (descending size).
	order := []string{"Washington DC", "Orlando", "New York City", "San Diego"}

	t := &Table{
		ID:    "Table IV",
		Title: "TM-1 text-like prediction accuracy (%), user-specific dataset",
		Header: []string{"C", "S",
			"SVM 5-f", "SVM 10-f", "RFC 5-f", "RFC 10-f", "MLP 5-f", "MLP 10-f"},
		Notes: []string{
			fmt.Sprintf("n-gram order %d, vocabulary cap %d", cfg.NGram, cfg.MaxFeatures),
			"paper band: 86.8-98.5 across all cells",
		},
	}
	for _, classes := range []int{2, 3, 4} {
		bal, perClass, err := balancedTopClasses(d, order, classes, cfg.Seed+int64(classes))
		if err != nil {
			return nil, err
		}
		row := []string{strconv.Itoa(classes), strconv.Itoa(perClass)}
		for _, kind := range textKinds {
			for _, folds := range []int{cfg.Folds5, cfg.Folds10} {
				m, err := elevprivacy.CrossValidateText(bal, cfg.textAttackConfig(kind), folds)
				if err != nil {
					return nil, fmt.Errorf("experiments: table IV %s %d-fold: %w", kind, folds, err)
				}
				row = append(row, pct(m.Accuracy))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure8TM2Text reproduces Figure 8: per-city borough models (TM-2) with
// accuracy, precision, recall and F1 for each classifier.
func Figure8TM2Text(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Figure 8",
		Title:  "TM-2 text-like borough prediction per city (%)",
		Header: []string{"city", "classifier", "accuracy", "precision", "recall", "F1"},
		Notes: []string{
			"paper: all accuracies above 55, P/R/F1 vary widely by city",
			"borough classes share one city terrain, hence the TM-1/TM-2 gap",
		},
	}
	for _, city := range elevprivacy.BoroughCities(elevprivacy.World()) {
		d, err := elevprivacy.NewBoroughDataset(city.Abbrev, cfg.minedConfig())
		if err != nil {
			return nil, err
		}
		for _, kind := range textKinds {
			m, err := elevprivacy.CrossValidateText(d, cfg.textAttackConfig(kind), cfg.Folds10)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure 8 %s/%s: %w", city.Abbrev, kind, err)
			}
			t.Rows = append(t.Rows, []string{
				city.Abbrev, string(kind),
				pct(m.Accuracy), pct(m.Precision), pct(m.Recall), pct(m.F1),
			})
		}
	}
	return t, nil
}

// tm3ClassCounts is the paper's Table V class-count column.
var tm3ClassCounts = []int{3, 5, 7, 8, 10}

// tm3Table runs the Table V/VI protocol over a city-level dataset.
func tm3Table(cfg Config, d *elevprivacy.Dataset, id, title string, notes []string) (*Table, error) {
	var order []string
	for _, city := range elevprivacy.World() {
		order = append(order, city.Name) // Table II order = descending size
	}

	t := &Table{
		ID:    id,
		Title: title,
		Header: []string{"C", "S",
			"SVM A", "SVM R", "SVM F1",
			"RFC A", "RFC R", "RFC F1",
			"MLP A", "MLP R", "MLP F1"},
		Notes: notes,
	}
	for _, classes := range tm3ClassCounts {
		bal, perClass, err := balancedTopClasses(d, order, classes, cfg.Seed+int64(classes)*31)
		if err != nil {
			return nil, err
		}
		row := []string{strconv.Itoa(classes), strconv.Itoa(perClass)}
		for _, kind := range textKinds {
			m, err := elevprivacy.CrossValidateText(bal, cfg.textAttackConfig(kind), cfg.Folds10)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s C=%d: %w", id, kind, classes, err)
			}
			row = append(row, pct(m.Accuracy), pct(m.Recall), pct(m.F1))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table5TM3Text reproduces Table V: TM-3 city prediction at 3-10 classes.
func Table5TM3Text(cfg Config) (*Table, error) {
	d, err := elevprivacy.NewCityLevelDataset(cfg.minedConfig())
	if err != nil {
		return nil, err
	}
	return tm3Table(cfg, d, "Table V",
		"TM-3 text-like city prediction (%), city-level dataset",
		[]string{
			"paper: A rises with C under balanced downsampling (80.9 -> 93.9) while macro R/F1 degrade",
		})
}

// Table6TM3OverlapSim reproduces Table VI: Table V rerun on the dataset
// rebuilt with ~30-35 % overlapped samples.
func Table6TM3OverlapSim(cfg Config) (*Table, error) {
	d, err := elevprivacy.NewCityLevelDataset(cfg.minedConfig())
	if err != nil {
		return nil, err
	}
	sim, err := elevprivacy.SimulateOverlap(d, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	return tm3Table(cfg, sim, "Table VI",
		"TM-3 text-like city prediction (%) with ~35% overlap introduced",
		[]string{
			"paper: every metric improves over Table V once overlap exists",
		})
}

// Figure9TM2OverlapSim reproduces Figure 9: per-city MLP accuracy on the
// original borough datasets versus their 30-34 % overlap simulations.
func Figure9TM2OverlapSim(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Figure 9",
		Title:  "TM-2 MLP accuracy (%): original vs simulated overlap datasets",
		Header: []string{"city", "original", "overlap-sim"},
		Notes: []string{
			"paper: overlapped route samples increase accuracy for every city",
		},
	}
	mlpCfg := cfg.textAttackConfig(elevprivacy.ClassifierMLP)
	for _, city := range elevprivacy.BoroughCities(elevprivacy.World()) {
		d, err := elevprivacy.NewBoroughDataset(city.Abbrev, cfg.minedConfig())
		if err != nil {
			return nil, err
		}
		base, err := elevprivacy.CrossValidateText(d, mlpCfg, cfg.Folds10)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 9 %s base: %w", city.Abbrev, err)
		}
		sim, err := elevprivacy.SimulateOverlap(d, cfg.Seed+int64(len(city.Abbrev)))
		if err != nil {
			return nil, err
		}
		boosted, err := elevprivacy.CrossValidateText(sim, mlpCfg, cfg.Folds10)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 9 %s sim: %w", city.Abbrev, err)
		}
		t.Rows = append(t.Rows, []string{city.Abbrev, pct(base.Accuracy), pct(boosted.Accuracy)})
	}
	return t, nil
}
