package experiments

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"elevprivacy/internal/durable"
)

func testRunner(name string, calls *map[string]int, fail error) Runner {
	return Runner{
		ID:   "Test " + name,
		Name: name,
		Run: func(cfg Config) (*Table, error) {
			(*calls)[name]++
			if fail != nil {
				return nil, fail
			}
			return &Table{
				ID:     "Test " + name,
				Title:  name,
				Header: []string{"k", "v"},
				Rows:   [][]string{{name, fmt.Sprintf("seed=%d", cfg.Seed)}},
			}, nil
		},
	}
}

func TestRunSuiteCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	cfg := Quick()
	calls := map[string]int{}
	runners := []Runner{
		testRunner("alpha", &calls, nil),
		testRunner("beta", &calls, nil),
		testRunner("gamma", &calls, nil),
	}

	// First run: drain after the first experiment completes.
	j, err := durable.OpenJournal(filepath.Join(dir, "suite.wal"))
	if err != nil {
		t.Fatal(err)
	}
	drain := make(chan struct{})
	var firstTables []string
	report, err := RunSuite(context.Background(), cfg, runners, j, drain, func(res SuiteResult) {
		if res.Table != nil {
			firstTables = append(firstTables, res.Table.String())
			close(drain)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Interrupted {
		t.Fatalf("drained run not marked interrupted: %s", report.Summary())
	}
	if report.Completed() != 1 {
		t.Fatalf("completed = %d, want 1: %s", report.Completed(), report.Summary())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: alpha must restore from the journal, beta/gamma compute.
	j2, err := durable.OpenJournal(filepath.Join(dir, "suite.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var resumedTables []string
	var restored []string
	report2, err := RunSuite(context.Background(), cfg, runners, j2, nil, func(res SuiteResult) {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Runner.Name, res.Err)
		}
		resumedTables = append(resumedTables, res.Table.String())
		if res.Restored {
			restored = append(restored, res.Runner.Name)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if report2.Completed() != 3 || report2.Restored() != 1 {
		t.Fatalf("resume report: %s", report2.Summary())
	}
	if len(restored) != 1 || restored[0] != "alpha" {
		t.Fatalf("restored = %v, want [alpha]", restored)
	}
	if calls["alpha"] != 1 {
		t.Fatalf("alpha recomputed on resume (%d calls)", calls["alpha"])
	}
	// The restored table must render byte-identically to the fresh one.
	if resumedTables[0] != firstTables[0] {
		t.Fatalf("restored table differs:\n%s\nvs\n%s", resumedTables[0], firstTables[0])
	}
}

func TestRunSuiteConfigChangeInvalidatesCheckpoints(t *testing.T) {
	dir := t.TempDir()
	calls := map[string]int{}
	runners := []Runner{testRunner("alpha", &calls, nil)}

	j, err := durable.OpenJournal(filepath.Join(dir, "suite.wal"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Quick()
	if _, err := RunSuite(context.Background(), cfg, runners, j, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := durable.OpenJournal(filepath.Join(dir, "suite.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg.Seed = 99 // different config: the old checkpoint must not be reused
	rep, err := RunSuite(context.Background(), cfg, runners, j2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored() != 0 || calls["alpha"] != 2 {
		t.Fatalf("stale checkpoint reused across configs: restored=%d calls=%d", rep.Restored(), calls["alpha"])
	}
}

func TestRunSuiteQuarantinesPanic(t *testing.T) {
	calls := map[string]int{}
	boom := Runner{ID: "Test boom", Name: "boom", Run: func(cfg Config) (*Table, error) {
		panic("experiment exploded")
	}}
	runners := []Runner{testRunner("alpha", &calls, nil), boom, testRunner("gamma", &calls, nil)}

	var failed []SuiteResult
	rep, err := RunSuite(context.Background(), Quick(), runners, nil, nil, func(res SuiteResult) {
		if res.Err != nil {
			failed = append(failed, res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed() != 2 {
		t.Fatalf("siblings of panicking experiment did not run: %s", rep.Summary())
	}
	if len(failed) != 1 || failed[0].Runner.Name != "boom" {
		t.Fatalf("failed = %+v", failed)
	}
	var pe *durable.PanicError
	if !errors.As(failed[0].Err, &pe) {
		t.Fatalf("err = %v, want *durable.PanicError", failed[0].Err)
	}
}

// TestRunSuiteRealExperimentResume pins the end-to-end contract on real
// paper artifacts: a killed-and-resumed suite renders byte-identical tables
// without re-running the finished experiments.
func TestRunSuiteRealExperimentResume(t *testing.T) {
	if testing.Short() {
		t.Skip("real experiment runners in -short mode")
	}
	cfg := Quick()
	reruns := map[string]int{}
	var runners []Runner
	for _, r := range All()[:2] { // Figure 1 (survey) and Table I: dataset-only, fast
		r := r
		inner := r.Run
		r.Run = func(c Config) (*Table, error) {
			reruns[r.Name]++
			return inner(c)
		}
		runners = append(runners, r)
	}

	uninterrupted := map[string]string{}
	if _, err := RunSuite(context.Background(), cfg, runners, nil, nil, func(res SuiteResult) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		uninterrupted[res.Runner.Name] = res.Table.String()
	}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	j, err := durable.OpenJournal(filepath.Join(dir, "suite.wal"))
	if err != nil {
		t.Fatal(err)
	}
	drain := make(chan struct{})
	emitted := 0
	if _, err := RunSuite(context.Background(), cfg, runners, j, drain, func(res SuiteResult) {
		if res.Table != nil {
			emitted++
			close(drain) // kill the run after the first artifact
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if emitted != 1 {
		t.Fatalf("drain did not stop the suite (emitted %d)", emitted)
	}

	j2, err := durable.OpenJournal(filepath.Join(dir, "suite.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := map[string]string{}
	if _, err := RunSuite(context.Background(), cfg, runners, j2, nil, func(res SuiteResult) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		resumed[res.Runner.Name] = res.Table.String()
	}); err != nil {
		t.Fatal(err)
	}

	for name, want := range uninterrupted {
		if resumed[name] != want {
			t.Fatalf("%s: resumed table differs from uninterrupted run:\n%s\nvs\n%s", name, resumed[name], want)
		}
	}
	if reruns[runners[0].Name] != 2 { // uninterrupted + interrupted, not the resume
		t.Fatalf("first experiment ran %d times, want 2 (resume must restore it)", reruns[runners[0].Name])
	}
}
