// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic world. Each experiment is a Runner
// producing a formatted Table; cmd/experiments prints them and the root
// benchmarks time them.
//
// Scaling: the paper's datasets (Tables I-III) are reproduced with their
// class RATIOS intact but scaled down by the config's Scale factors so a
// full run finishes on a laptop. Epoch budgets scale the paper's
// 500/1000/2000 sweep the same way. Every scaled constant lives in Config
// and is recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one reproduced table or figure, rendered as aligned text.
type Table struct {
	// ID names the paper artifact ("Table V", "Figure 8").
	ID string
	// Title is the caption.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Notes carry scaling caveats and paper reference values.
	Notes []string
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Config holds every scaling knob of the experiment suite.
type Config struct {
	// UserScale multiplies Table I class sizes (366/232/120/18).
	UserScale float64
	// MinedScale multiplies Table II/III class sizes.
	MinedScale float64
	// ProfileSamples is the per-profile elevation sample count for mined
	// datasets.
	ProfileSamples int
	// MinPerClass floors scaled class sizes.
	MinPerClass int
	// NGram is the paper's n (8).
	NGram int
	// MaxFeatures bounds the BoW vocabulary.
	MaxFeatures int
	// CNNEpochs is the budget standing in for the paper's 1000-epoch
	// setting; Table VIII sweeps {CNNEpochs/2, CNNEpochs, 2×CNNEpochs}
	// mirroring the paper's {500, 1000, 2000}.
	CNNEpochs int
	// Folds10 is the paper's 10-fold setting (kept configurable so quick
	// runs can drop to fewer folds).
	Folds10 int
	// Folds5 is the paper's 5-fold setting.
	Folds5 int
	// Seed drives all randomness.
	Seed int64
}

// Default returns the laptop-scale configuration the benchmarks use.
func Default() Config {
	return Config{
		UserScale:      0.30,
		MinedScale:     0.08,
		ProfileSamples: 80,
		MinPerClass:    25,
		NGram:          8,
		MaxFeatures:    2048,
		CNNEpochs:      16,
		Folds10:        10,
		Folds5:         5,
		Seed:           1,
	}
}

// Quick returns a minutes-scale configuration for smoke tests.
func Quick() Config {
	return Config{
		UserScale:      0.08,
		MinedScale:     0.02,
		ProfileSamples: 40,
		MinPerClass:    8,
		NGram:          8,
		MaxFeatures:    1024,
		CNNEpochs:      5,
		Folds10:        4,
		Folds5:         3,
		Seed:           1,
	}
}

// Runner is one reproducible experiment.
type Runner struct {
	// ID names the paper artifact.
	ID string
	// Name is a short slug ("tm3-text").
	Name string
	// Run executes the experiment.
	Run func(Config) (*Table, error)
}

// All returns every experiment in paper order, followed by the ablations.
func All() []Runner {
	return []Runner{
		{ID: "Figure 1", Name: "survey", Run: Figure1Survey},
		{ID: "Table I", Name: "user-dataset", Run: Table1UserDataset},
		{ID: "Table II", Name: "city-dataset", Run: Table2CityDataset},
		{ID: "Table III", Name: "borough-dataset", Run: Table3BoroughDataset},
		{ID: "Table IV", Name: "tm1-text", Run: Table4TM1Text},
		{ID: "Figure 8", Name: "tm2-text", Run: Figure8TM2Text},
		{ID: "Table V", Name: "tm3-text", Run: Table5TM3Text},
		{ID: "Figure 9", Name: "tm2-overlap-sim", Run: Figure9TM2OverlapSim},
		{ID: "Table VI", Name: "tm3-overlap-sim", Run: Table6TM3OverlapSim},
		{ID: "Table VII", Name: "image-methods", Run: Table7ImageMethods},
		{ID: "Table VIII", Name: "finetune-epochs", Run: Table8FineTuneEpochs},
		{ID: "Table IX", Name: "finetune-tm2", Run: Table9FineTuneTM2},
		{ID: "Ablation A1", Name: "ablation-ngram", Run: AblationNGramOrder},
		{ID: "Ablation A2", Name: "ablation-discretization", Run: AblationDiscretization},
		{ID: "Ablation A3", Name: "ablation-image-size", Run: AblationImageSize},
		{ID: "Ablation A4", Name: "ablation-feature-threshold", Run: AblationFeatureThreshold},
		{ID: "Ablation A5", Name: "ablation-forest-size", Run: AblationForestSize},
		{ID: "Extension E1", Name: "defense-tradeoff", Run: ExtensionDefenses},
		{ID: "Extension E2", Name: "spectral-baseline", Run: ExtensionSpectralBaseline},
		{ID: "Extension E3", Name: "confusion-analysis", Run: ExtensionConfusionAnalysis},
	}
}

// ByName finds a runner by slug.
func ByName(name string) (Runner, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", name)
}

// pct formats a [0,1] metric as the paper's percentage style.
func pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }
