package experiments

import (
	"fmt"
	"strconv"

	"elevprivacy"
)

// imageConfig builds the CNN attack settings for one training mode.
func (c Config) imageConfig(mode elevprivacy.TrainMode, epochs int) elevprivacy.ImageAttackConfig {
	ic := elevprivacy.DefaultImageAttackConfig(mode)
	ic.Epochs = epochs
	ic.Seed = c.Seed
	return ic
}

// imageTestFrac is the held-out share for image evaluations.
const imageTestFrac = 0.2

// tm1Dataset, tm3Dataset, tm2Dataset build the three threat models' data.
func (c Config) tm1Dataset() (*elevprivacy.Dataset, error) {
	return elevprivacy.NewUserSpecificDataset(c.userConfig())
}

func (c Config) tm3Dataset() (*elevprivacy.Dataset, error) {
	return elevprivacy.NewCityLevelDataset(c.minedConfig())
}

func (c Config) tm2Dataset(abbrev string) (*elevprivacy.Dataset, error) {
	return elevprivacy.NewBoroughDataset(abbrev, c.minedConfig())
}

// bestTextAccuracy runs the three text classifiers (downsampled protocol)
// and returns the best accuracy, the Table VII "DS" column.
func bestTextAccuracy(cfg Config, d *elevprivacy.Dataset) (float64, error) {
	var best float64
	for _, kind := range textKinds {
		m, err := elevprivacy.CrossValidateText(d, cfg.textAttackConfig(kind), cfg.Folds10)
		if err != nil {
			return 0, err
		}
		if m.Accuracy > best {
			best = m.Accuracy
		}
	}
	return best, nil
}

// Table7ImageMethods reproduces Table VII: maximum achieved accuracy for
// the text-like downsampled method versus the CNN with unweighted loss,
// weighted loss, and fine-tuning, across TM-1, the six TM-2 cities, and
// TM-3.
func Table7ImageMethods(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Table VII",
		Title:  "Maximum achieved accuracy (%) across methods",
		Header: []string{"evaluation", "text DS", "UWL(biased)", "WL", "FT"},
		Notes: []string{
			"paper: UWL is biased by class imbalance and excluded from the max",
			"paper: WL is the best unbiased image method for most TM-2 cities; FT trails (loses data in rounds)",
		},
	}

	type task struct {
		name string
		data func() (*elevprivacy.Dataset, error)
	}
	tasks := []task{
		{"TM-1", cfg.tm1Dataset},
	}
	for _, city := range elevprivacy.BoroughCities(elevprivacy.World()) {
		city := city
		tasks = append(tasks, task{"TM-2: " + city.Abbrev, func() (*elevprivacy.Dataset, error) {
			return cfg.tm2Dataset(city.Abbrev)
		}})
	}
	tasks = append(tasks, task{"TM-3", cfg.tm3Dataset})

	for _, tk := range tasks {
		d, err := tk.data()
		if err != nil {
			return nil, err
		}
		textAcc, err := bestTextAccuracy(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("experiments: table VII %s text: %w", tk.name, err)
		}

		row := []string{tk.name, pct(textAcc)}
		for _, mode := range []elevprivacy.TrainMode{
			elevprivacy.TrainUnweighted, elevprivacy.TrainWeighted, elevprivacy.TrainFineTune,
		} {
			m, err := elevprivacy.EvaluateImageAttack(d, cfg.imageConfig(mode, cfg.CNNEpochs), imageTestFrac)
			if err != nil {
				return nil, fmt.Errorf("experiments: table VII %s %s: %w", tk.name, mode, err)
			}
			row = append(row, pct(m.Accuracy))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// epochSweep maps the paper's {500, 1000, 2000} sweep onto the scaled
// budget {E/2, E, 2E}.
func (c Config) epochSweep() []int {
	half := c.CNNEpochs / 2
	if half < 1 {
		half = 1
	}
	return []int{half, c.CNNEpochs, 2 * c.CNNEpochs}
}

// Table8FineTuneEpochs reproduces Table VIII: fine-tuning metrics for TM-1
// and TM-3 as the epoch budget changes.
func Table8FineTuneEpochs(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "Table VIII",
		Title: "Fine-tuning results vs epoch budget (TM-1, TM-3)",
		Header: []string{"threat model", "epochs",
			"accuracy", "recall", "specificity", "F1"},
		Notes: []string{
			fmt.Sprintf("epoch budgets {%d,%d,%d} stand in for the paper's {500,1000,2000}",
				cfg.epochSweep()[0], cfg.epochSweep()[1], cfg.epochSweep()[2]),
			"paper: the middle budget peaks on both threat models",
		},
	}

	for _, tm := range []struct {
		name string
		data func() (*elevprivacy.Dataset, error)
	}{
		{"TM-1", cfg.tm1Dataset},
		{"TM-3", cfg.tm3Dataset},
	} {
		d, err := tm.data()
		if err != nil {
			return nil, err
		}
		for _, epochs := range cfg.epochSweep() {
			m, err := elevprivacy.EvaluateImageAttack(d, cfg.imageConfig(elevprivacy.TrainFineTune, epochs), imageTestFrac)
			if err != nil {
				return nil, fmt.Errorf("experiments: table VIII %s e=%d: %w", tm.name, epochs, err)
			}
			t.Rows = append(t.Rows, []string{
				tm.name, strconv.Itoa(epochs),
				pct(m.Accuracy), pct(m.Recall), pct(m.Specificity), pct(m.F1),
			})
		}
	}
	return t, nil
}

// Table9FineTuneTM2 reproduces Table IX: fine-tuning metrics per TM-2 city
// at the fixed middle epoch budget.
func Table9FineTuneTM2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Table IX",
		Title:  "Fine-tuning results for TM-2 (fixed epoch budget)",
		Header: []string{"city", "accuracy", "recall", "specificity", "F1"},
		Notes: []string{
			fmt.Sprintf("epoch budget %d stands in for the paper's 1000, lr 0.001 all rounds", cfg.CNNEpochs),
		},
	}
	for _, city := range elevprivacy.BoroughCities(elevprivacy.World()) {
		d, err := cfg.tm2Dataset(city.Abbrev)
		if err != nil {
			return nil, err
		}
		m, err := elevprivacy.EvaluateImageAttack(d, cfg.imageConfig(elevprivacy.TrainFineTune, cfg.CNNEpochs), imageTestFrac)
		if err != nil {
			return nil, fmt.Errorf("experiments: table IX %s: %w", city.Abbrev, err)
		}
		t.Rows = append(t.Rows, []string{
			city.Abbrev,
			pct(m.Accuracy), pct(m.Recall), pct(m.Specificity), pct(m.F1),
		})
	}
	return t, nil
}
