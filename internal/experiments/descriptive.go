package experiments

import (
	"fmt"
	"strconv"

	"elevprivacy"
	"elevprivacy/internal/survey"
)

// userConfig maps the suite config onto the user-specific dataset builder.
func (c Config) userConfig() elevprivacy.DatasetConfig {
	return elevprivacy.DatasetConfig{
		Scale:          c.UserScale,
		ProfileSamples: c.ProfileSamples,
		MinPerClass:    c.MinPerClass,
		Seed:           c.Seed,
	}
}

// minedConfig maps the suite config onto the mined dataset builders.
func (c Config) minedConfig() elevprivacy.DatasetConfig {
	return elevprivacy.DatasetConfig{
		Scale:          c.MinedScale,
		ProfileSamples: c.ProfileSamples,
		MinPerClass:    c.MinPerClass,
		Seed:           c.Seed + 100,
	}
}

// Figure1Survey reproduces the paper's survey marginals (Fig. 1) from 60
// simulated respondents.
func Figure1Survey(cfg Config) (*Table, error) {
	responses, err := survey.Simulate(60, cfg.Seed)
	if err != nil {
		return nil, err
	}
	agg, err := survey.Aggregate(responses)
	if err != nil {
		return nil, err
	}
	paper := survey.PaperMarginals()

	t := &Table{
		ID:     "Figure 1",
		Title:  "Survey results (60 simulated participants)",
		Header: []string{"question", "answer", "simulated %", "paper %"},
	}
	for _, s := range []survey.StartPoint{survey.StartHome, survey.StartSchool, survey.StartWork, survey.StartElsewhere} {
		t.Rows = append(t.Rows, []string{"start point", s.String(),
			pct(agg.StartShares[s]), pct(paper.StartShares[s])})
	}
	for _, s := range []survey.StartPoint{survey.StartHome, survey.StartSchool, survey.StartWork, survey.StartElsewhere} {
		t.Rows = append(t.Rows, []string{"end point", s.String(),
			pct(agg.EndShares[s]), pct(paper.EndShares[s])})
	}
	for _, b := range []survey.Belief{survey.BeliefYes, survey.BeliefMaybe, survey.BeliefNo} {
		t.Rows = append(t.Rows, []string{"no-location = privacy?", b.String(),
			pct(agg.PrivacyShares[b]), pct(paper.PrivacyShares[b])})
	}
	for _, b := range []survey.Belief{survey.BeliefYes, survey.BeliefMaybe, survey.BeliefNo} {
		t.Rows = append(t.Rows, []string{"hiding map enough?", b.String(),
			strconv.Itoa(agg.HidingMapCounts[b]), strconv.Itoa(paper.HidingMapCounts[b])})
	}
	return t, nil
}

// Table1UserDataset reproduces Table I: the user-specific dataset's
// per-region sample sizes, plus the measured route-overlap ratio the paper
// reports as ~35 %.
func Table1UserDataset(cfg Config) (*Table, error) {
	d, err := elevprivacy.NewUserSpecificDataset(cfg.userConfig())
	if err != nil {
		return nil, err
	}
	counts := d.CountByLabel()

	t := &Table{
		ID:     "Table I",
		Title:  "User-specific dataset sample size distribution",
		Header: []string{"region", "samples", "paper"},
		Notes: []string{
			fmt.Sprintf("class sizes scaled by %.2f (MinPerClass %d)", cfg.UserScale, cfg.MinPerClass),
			fmt.Sprintf("average same-region route overlap = %.1f%% (paper: 35%%)",
				d.AverageOverlapRatio()*100),
		},
	}
	for _, region := range elevprivacy.AthleteWorld() {
		t.Rows = append(t.Rows, []string{
			region.Name,
			strconv.Itoa(counts[region.Name]),
			strconv.Itoa(region.TargetSegments),
		})
	}
	return t, nil
}

// Table2CityDataset reproduces Table II: city-level sample sizes.
func Table2CityDataset(cfg Config) (*Table, error) {
	d, err := elevprivacy.NewCityLevelDataset(cfg.minedConfig())
	if err != nil {
		return nil, err
	}
	counts := d.CountByLabel()

	t := &Table{
		ID:     "Table II",
		Title:  "City-level dataset sample size distribution",
		Header: []string{"region", "samples", "paper"},
		Notes: []string{
			fmt.Sprintf("class sizes scaled by %.3f (MinPerClass %d)", cfg.MinedScale, cfg.MinPerClass),
			"mined datasets contain no overlapped samples (disjoint grid regions)",
		},
	}
	for _, city := range elevprivacy.World() {
		t.Rows = append(t.Rows, []string{
			city.Name,
			strconv.Itoa(counts[city.Name]),
			strconv.Itoa(city.TargetSegments),
		})
	}
	return t, nil
}

// Table3BoroughDataset reproduces Table III: borough-level sample sizes
// for the six borough cities.
func Table3BoroughDataset(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Table III",
		Title:  "Borough-level dataset sample size distribution",
		Header: []string{"city", "region", "samples", "paper"},
		Notes: []string{
			fmt.Sprintf("class sizes scaled by %.3f (MinPerClass %d)", cfg.MinedScale, cfg.MinPerClass),
		},
	}
	for _, city := range elevprivacy.BoroughCities(elevprivacy.World()) {
		d, err := elevprivacy.NewBoroughDataset(city.Abbrev, cfg.minedConfig())
		if err != nil {
			return nil, err
		}
		counts := d.CountByLabel()
		for _, b := range city.Boroughs {
			t.Rows = append(t.Rows, []string{
				city.Abbrev,
				b.Name,
				strconv.Itoa(counts[b.Name]),
				strconv.Itoa(b.TargetSegments),
			})
		}
	}
	return t, nil
}
