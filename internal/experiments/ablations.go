package experiments

import (
	"fmt"
	"strconv"

	"elevprivacy"
	"elevprivacy/internal/imagerep"
)

// ablationDataset is the shared workload for the text ablations: the TM-3
// city-level dataset balanced at 10 classes (the paper's hardest text
// setting).
func (c Config) ablationDataset() (*elevprivacy.Dataset, error) {
	d, err := elevprivacy.NewCityLevelDataset(c.minedConfig())
	if err != nil {
		return nil, err
	}
	var order []string
	for _, city := range elevprivacy.World() {
		order = append(order, city.Name)
	}
	bal, _, err := balancedTopClasses(d, order, 10, c.Seed+997)
	return bal, err
}

// AblationNGramOrder sweeps the n-gram order the paper fixes at 8.
func AblationNGramOrder(cfg Config) (*Table, error) {
	d, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A1",
		Title:  "Effect of n-gram order (TM-3, MLP, 10 classes)",
		Header: []string{"n", "accuracy", "recall", "F1"},
		Notes:  []string{"paper fixes n = 8 for all text experiments"},
	}
	for _, n := range []int{1, 2, 4, 8} {
		tc := cfg.textAttackConfig(elevprivacy.ClassifierMLP)
		tc.NGram = n
		m, err := elevprivacy.CrossValidateText(d, tc, cfg.Folds10)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation n=%d: %w", n, err)
		}
		t.Rows = append(t.Rows, []string{strconv.Itoa(n), pct(m.Accuracy), pct(m.Recall), pct(m.F1)})
	}
	return t, nil
}

// AblationDiscretization compares the paper's two discretizers plus an
// intermediate precision.
func AblationDiscretization(cfg Config) (*Table, error) {
	d, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A2",
		Title:  "Effect of discretization precision (TM-3, MLP, 10 classes)",
		Header: []string{"discretizer", "accuracy", "recall", "F1"},
		Notes: []string{
			"paper uses floor for the dense user dataset and 3 decimals for mined data;",
			"on continuous synthetic elevations finer precision fragments the vocabulary",
		},
	}
	for _, p := range []struct {
		name      string
		precision int
	}{
		{"floor (1 m)", 0},
		{"1 decimal (0.1 m)", 1},
		{"3 decimals (0.001 m)", 3},
	} {
		tc := cfg.textAttackConfig(elevprivacy.ClassifierMLP)
		tc.Precision = p.precision
		m, err := elevprivacy.CrossValidateText(d, tc, cfg.Folds10)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", p.name, err)
		}
		t.Rows = append(t.Rows, []string{p.name, pct(m.Accuracy), pct(m.Recall), pct(m.F1)})
	}
	return t, nil
}

// AblationImageSize compares the paper's 32×32 raster against 64×64 and a
// reduced resample count.
func AblationImageSize(cfg Config) (*Table, error) {
	d, err := cfg.tm1Dataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A3",
		Title:  "Effect of image resolution and resampling (TM-1, weighted CNN)",
		Header: []string{"raster", "resample points", "accuracy", "F1"},
		Notes:  []string{"paper uses 32x32 with 200 resampled elevation values"},
	}
	for _, variant := range []struct {
		size   int
		points int
	}{
		{32, 200},
		{64, 200},
		{32, 50},
	} {
		ic := cfg.imageConfig(elevprivacy.TrainWeighted, cfg.CNNEpochs)
		render := imagerep.DefaultConfig()
		render.Width = variant.size
		render.Height = variant.size
		render.ResamplePoints = variant.points
		ic.Render = render
		m, err := elevprivacy.EvaluateImageAttack(d, ic, imageTestFrac)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %dx%d: %w", variant.size, variant.size, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", variant.size, variant.size),
			strconv.Itoa(variant.points),
			pct(m.Accuracy), pct(m.F1),
		})
	}
	return t, nil
}

// AblationFeatureThreshold sweeps the term-frequency feature-selection
// threshold of §III-C.
func AblationFeatureThreshold(cfg Config) (*Table, error) {
	d, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A4",
		Title:  "Effect of the term-frequency threshold (TM-3, MLP, 10 classes)",
		Header: []string{"min frequency", "accuracy", "recall", "F1"},
		Notes:  []string{"the paper discards features under a frequency threshold when vocabularies grow too large"},
	}
	for _, minFreq := range []int{1, 2, 5, 10} {
		tc := cfg.textAttackConfig(elevprivacy.ClassifierMLP)
		tc.MinFrequency = minFreq
		m, err := elevprivacy.CrossValidateText(d, tc, cfg.Folds10)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation minfreq=%d: %w", minFreq, err)
		}
		t.Rows = append(t.Rows, []string{strconv.Itoa(minFreq), pct(m.Accuracy), pct(m.Recall), pct(m.F1)})
	}
	return t, nil
}

// AblationForestSize sweeps the random forest's ensemble size around the
// paper's 100 trees.
func AblationForestSize(cfg Config) (*Table, error) {
	d, err := cfg.ablationDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A5",
		Title:  "Effect of forest size (TM-3, RFC, 10 classes)",
		Header: []string{"trees", "accuracy", "recall", "F1"},
		Notes:  []string{"paper uses 100 trees"},
	}
	for _, trees := range []int{10, 50, 100, 200} {
		tc := cfg.textAttackConfig(elevprivacy.ClassifierRandomForest)
		tc.ForestTrees = trees
		m, err := elevprivacy.CrossValidateText(d, tc, cfg.Folds10)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation trees=%d: %w", trees, err)
		}
		t.Rows = append(t.Rows, []string{strconv.Itoa(trees), pct(m.Accuracy), pct(m.Recall), pct(m.F1)})
	}
	return t, nil
}
