package ingest

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config, cls Classifier) (*Pipeline, *httptest.Server) {
	t.Helper()
	cfg.Logf = discardLogf
	p, err := Open(t.TempDir(), cfg, cls)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(p, WithLogf(discardLogf)).Handler())
	t.Cleanup(srv.Close)
	return p, srv
}

func postNDJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func lines(envs ...Envelope) string {
	var sb strings.Builder
	for _, e := range envs {
		b, _ := EncodeLine(e)
		sb.Write(b)
	}
	return sb.String()
}

func TestServerUploadAndResults(t *testing.T) {
	p, srv := newTestServer(t, Config{MaxBatch: 8, MaxBatchAge: time.Millisecond}, newTestClassifier())

	resp := postNDJSON(t, srv.URL, lines(env(0), env(1), env(2))+"\n"+lines(env(1)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload = %d: %s", resp.StatusCode, body)
	}
	var ur UploadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if ur.Accepted != 3 || ur.Duplicates != 1 {
		t.Fatalf("upload response = %+v, want 3 accepted, 1 duplicate", ur)
	}

	waitFor(t, "uploads classified", func() bool { return p.Stats().Results == 3 })
	rr, err := http.Get(srv.URL + "/ingest/results")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	body, _ := io.ReadAll(rr.Body)
	got := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(got) != 3 {
		t.Fatalf("results dump has %d lines, want 3: %q", len(got), body)
	}
	var prev string
	for _, line := range got {
		var rl ResultLine
		if err := json.Unmarshal([]byte(line), &rl); err != nil {
			t.Fatalf("results line %q: %v", line, err)
		}
		if rl.ID <= prev {
			t.Fatalf("results dump not sorted: %q after %q", rl.ID, prev)
		}
		prev = rl.ID
		if want := label(0); rl.ID == env(0).ID && rl.Predicted != want {
			t.Fatalf("prediction for %s = %q, want %q", rl.ID, rl.Predicted, want)
		}
	}

	sr, err := http.Get(srv.URL + "/ingest/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st Stats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 3 || st.Results != 3 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerRejectsMalformedLineButKeepsPrefix(t *testing.T) {
	p, srv := newTestServer(t, Config{MaxBatch: 8, MaxBatchAge: time.Millisecond}, newTestClassifier())

	body := lines(env(0)) + "{broken json\n" + lines(env(1))
	resp := postNDJSON(t, srv.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed upload = %d, want 400", resp.StatusCode)
	}
	var ur struct {
		UploadResponse
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	// The line before the malformed one was accepted and synced; the line
	// after was never read.
	if ur.Accepted != 1 || !strings.Contains(ur.Error, "line 2") {
		t.Fatalf("response = %+v", ur)
	}
	waitFor(t, "accepted prefix classified", func() bool { return p.Stats().Results == 1 })
	if p.intake.Has(env(1).ID) {
		t.Fatal("the line after the malformed one was accepted")
	}
}

func TestServerBoundsHostileLine(t *testing.T) {
	_, srv := newTestServer(t, Config{
		MaxBatch: 8, MaxBatchAge: time.Millisecond,
		Limits: Limits{MaxLineBytes: 128},
	}, newTestClassifier())

	huge := `{"id":"a","elevations":[` + strings.Repeat("1,", 400) + `1]}` + "\n"
	resp := postNDJSON(t, srv.URL, huge)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized line = %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "byte bound") {
		t.Fatalf("oversized-line error does not name the bound: %s", body)
	}
}

func TestServerShedsWithRetryAfterWhenBacklogFull(t *testing.T) {
	cls := newTestClassifier()
	cls.gate = make(chan struct{})
	defer close(cls.gate)
	p, srv := newTestServer(t, Config{SpoolDepth: 1, MaxBatch: 1, MaxBacklog: 1}, cls)

	// Wedge the classifier, fill the spool and the backlog.
	resp := postNDJSON(t, srv.URL, lines(env(0)))
	resp.Body.Close()
	waitFor(t, "classifier to wedge", func() bool { return cls.batchesStarted() == 1 })
	resp = postNDJSON(t, srv.URL, lines(env(1), env(2)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filling upload = %d, want 200", resp.StatusCode)
	}

	resp = postNDJSON(t, srv.URL, lines(env(3)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload upload = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response has no Retry-After hint")
	}
	if p.intake.Has(env(3).ID) {
		t.Fatal("shed activity was journaled")
	}
}

func TestServerRefusesWhileDraining(t *testing.T) {
	p, srv := newTestServer(t, Config{MaxBatch: 8, MaxBatchAge: time.Millisecond}, newTestClassifier())
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postNDJSON(t, srv.URL, lines(env(0)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload during drain = %d, want 503", resp.StatusCode)
	}
}
