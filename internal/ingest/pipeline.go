package ingest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/obs"
)

// Classifier is the stage the spooler feeds: one batch of elevation
// profiles in, one predicted label per profile out. Predictions must be
// row-independent and deterministic — the exactly-once contract replays
// activities across arbitrary batch boundaries and still promises
// byte-identical results.
type Classifier interface {
	ClassifyBatch(profiles [][]float64) ([]string, error)
}

// Config tunes the pipeline's bounds. Every bound exists to keep some
// resource finite under overload: SpoolDepth bounds queued profiles,
// MaxBacklog bounds the accepted-but-unclassified set (past it the front
// door sheds), MaxBatch/MaxBatchAge bound how much latency batching may
// add, StageTimeout bounds how long one wedged classifier call can stall
// the belt.
type Config struct {
	// SpoolDepth is the bounded queue between accept and classify.
	SpoolDepth int
	// MaxBatch is the largest batch handed to the classifier.
	MaxBatch int
	// MaxBatchAge bounds how long a partial batch waits for more rows.
	MaxBatchAge time.Duration
	// MaxBacklog bounds accepted-but-unclassified activities; an accept
	// that would exceed it is shed with a retry hint instead of journaled.
	MaxBacklog int
	// StageTimeout abandons a classify call that outlives it; the batch's
	// activities return to the backlog and are replayed. 0 disables it.
	StageTimeout time.Duration
	// ReplayInterval is how often the replayer tries to move backlog
	// entries into free spool capacity.
	ReplayInterval time.Duration
	// SyncEvery is the journals' fsync batch (1 = every record). The
	// intake journal is additionally flushed by every Sync call, which the
	// HTTP layer issues before acknowledging a request.
	SyncEvery int
	// Limits bounds decoded envelopes (re-checked on Accept).
	Limits Limits
	// Logf receives requeue/replay diagnostics; nil means the process obs
	// logger at error level.
	Logf func(string, ...any)
}

// withDefaults fills zero fields with serving-shaped defaults.
func (c Config) withDefaults() Config {
	if c.SpoolDepth <= 0 {
		c.SpoolDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBatchAge <= 0 {
		c.MaxBatchAge = 50 * time.Millisecond
	}
	if c.MaxBacklog <= 0 {
		c.MaxBacklog = 1 << 16
	}
	if c.ReplayInterval <= 0 {
		c.ReplayInterval = 200 * time.Millisecond
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = DefaultSyncEvery
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// DefaultSyncEvery is the ingest journals' fsync batch. Tighter than the
// mining default (durable.DefaultSyncEvery = 16): the spill journal is the
// loss bound for live traffic, and the per-request Sync already amortizes
// multi-line uploads, so small batches cost little.
const DefaultSyncEvery = 4

// Journal file names inside the pipeline directory.
const (
	intakeJournalName  = "intake.journal"
	resultsJournalName = "results.journal"
)

// Status classifies what Accept did with an envelope.
type Status int

const (
	// Accepted: journaled, queued for classification.
	Accepted Status = iota
	// Spilled: journaled, but the spool was full — parked in the backlog
	// for the replayer. Still durably accepted.
	Spilled
	// Duplicate: the ID was already accepted (possibly already
	// classified); nothing new recorded.
	Duplicate
	// Shed: refused without journaling — backlog at bound or draining.
	// The caller should tell the client to back off and retry.
	Shed
)

func (s Status) String() string {
	switch s {
	case Accepted:
		return "accepted"
	case Spilled:
		return "spilled"
	case Duplicate:
		return "duplicate"
	default:
		return "shed"
	}
}

// ErrDraining reports an accept attempted after drain began.
var ErrDraining = errors.New("ingest: pipeline is draining")

// ErrStageTimeout reports a classify call abandoned past StageTimeout.
var ErrStageTimeout = errors.New("ingest: classifier stage deadline exceeded")

// spoolItem is one queued activity.
type spoolItem struct {
	id     string
	region string
	elevs  []float64
	enq    time.Time
}

// Pipeline is the running spooler: Accept at the front, a batcher and
// replayer behind, two journals underneath. Construct with Open, stop with
// Drain.
type Pipeline struct {
	cfg     Config
	cls     Classifier
	intake  *durable.Journal // id → Envelope, appended before the ack
	results *durable.Journal // id → predicted label

	spool   chan spoolItem
	drainCh chan struct{}
	wg      sync.WaitGroup

	mu       sync.Mutex
	backlog  map[string]struct{} // accepted, durable, not in the spool
	inflight map[string]struct{} // in the spool or mid-classify
	draining bool

	accepted   atomic.Int64
	duplicates atomic.Int64
	shed       atomic.Int64
	spilled    atomic.Int64
	classified atomic.Int64
	replayed   atomic.Int64
	requeued   atomic.Int64
	timeouts   atomic.Int64
	failures   atomic.Int64
	restored   int64

	closeOnce sync.Once
	closeErr  error

	logf func(string, ...any)
}

// Open opens (creating if needed) the pipeline state under dir and starts
// the batcher and replayer. On a restart, the backlog is rebuilt as
// intake − results: every activity that was acknowledged but not yet
// classified when the previous process died, ready to replay.
func Open(dir string, cfg Config, cls Classifier) (*Pipeline, error) {
	if cls == nil {
		return nil, fmt.Errorf("ingest: nil classifier")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: creating %s: %w", dir, err)
	}
	intake, err := durable.OpenJournal(filepath.Join(dir, intakeJournalName))
	if err != nil {
		return nil, err
	}
	results, err := durable.OpenJournal(filepath.Join(dir, resultsJournalName))
	if err != nil {
		_ = intake.Close()
		return nil, err
	}
	intake.SyncEvery = cfg.SyncEvery
	results.SyncEvery = cfg.SyncEvery

	p := &Pipeline{
		cfg:      cfg,
		cls:      cls,
		intake:   intake,
		results:  results,
		spool:    make(chan spoolItem, cfg.SpoolDepth),
		drainCh:  make(chan struct{}),
		backlog:  make(map[string]struct{}),
		inflight: make(map[string]struct{}),
		logf:     cfg.Logf,
	}
	if p.logf == nil {
		p.logf = func(format string, args ...any) { obs.DefaultLogger().Errorf(format, args...) }
	}
	for _, id := range intake.Keys() {
		if !results.Has(id) {
			p.backlog[id] = struct{}{}
		}
	}
	p.restored = int64(len(p.backlog))
	mRestored.Add(p.restored)
	mBacklogDepth.Set(float64(len(p.backlog)))

	p.wg.Add(2)
	go p.batcher()
	go p.replayer()
	return p, nil
}

// Accept admits one validated envelope. The envelope is journaled before
// Accept returns Accepted or Spilled — after the caller's next Sync it can
// never be lost — and is deduplicated by ID against everything already
// accepted. Shed means nothing was recorded and the client must retry
// later. The returned error is an internal failure (journal I/O), except
// ErrDraining which accompanies Shed during shutdown.
func (p *Pipeline) Accept(env Envelope) (Status, error) {
	if err := env.Validate(p.cfg.Limits); err != nil {
		return Shed, err
	}

	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		p.shed.Add(1)
		mShed.Inc()
		return Shed, ErrDraining
	}
	if _, ok := p.inflight[env.ID]; ok {
		p.mu.Unlock()
		p.duplicates.Add(1)
		mDuplicates.Inc()
		return Duplicate, nil
	}
	if _, ok := p.backlog[env.ID]; ok {
		p.mu.Unlock()
		p.duplicates.Add(1)
		mDuplicates.Inc()
		return Duplicate, nil
	}
	if p.results.Has(env.ID) || p.intake.Has(env.ID) {
		// Accepted by a previous incarnation (classified or still pending
		// restore) — the ack is already durable.
		p.mu.Unlock()
		p.duplicates.Add(1)
		mDuplicates.Inc()
		return Duplicate, nil
	}
	if len(p.backlog) >= p.cfg.MaxBacklog {
		// The durable overflow is itself at bound; admitting more would
		// grow memory without bound. Shed and let the client back off.
		p.mu.Unlock()
		p.shed.Add(1)
		mShed.Inc()
		return Shed, nil
	}
	// Reserve the ID before the journal write so a concurrent duplicate
	// upload of the same ID cannot double-accept.
	p.inflight[env.ID] = struct{}{}
	p.mu.Unlock()

	if err := p.intake.Put(env.ID, env); err != nil {
		p.mu.Lock()
		delete(p.inflight, env.ID)
		p.mu.Unlock()
		return Shed, err
	}
	p.accepted.Add(1)
	mAccepted.Inc()

	item := spoolItem{id: env.ID, region: env.Region, elevs: env.Elevations, enq: time.Now()}
	select {
	case p.spool <- item:
		mSpoolDepth.Set(float64(len(p.spool)))
		return Accepted, nil
	default:
		// Spool full: the activity is durable in the intake journal, so
		// park the ID and let the replayer feed it back when the
		// classifier catches up. This is the graceful-degradation path:
		// accept → spill → recover, never lose.
		p.mu.Lock()
		delete(p.inflight, env.ID)
		p.backlog[env.ID] = struct{}{}
		depth := len(p.backlog)
		p.mu.Unlock()
		p.spilled.Add(1)
		mSpilled.Inc()
		mBacklogDepth.Set(float64(depth))
		return Spilled, nil
	}
}

// Sync makes every accepted-so-far envelope durable. The HTTP layer calls
// it once per request, before the acknowledgment — the fsync cost is
// amortized over the request's lines instead of paid per activity.
func (p *Pipeline) Sync() error { return p.intake.Flush() }

// RetryAfterHint is the backoff a shed client should honor, scaled with
// backlog pressure: an almost-empty backlog hints 1 s, a full one hints
// proportionally longer, so pooled clients spread their retries instead of
// stampeding the moment one slot frees.
func (p *Pipeline) RetryAfterHint() time.Duration {
	p.mu.Lock()
	frac := float64(len(p.backlog)) / float64(p.cfg.MaxBacklog)
	p.mu.Unlock()
	secs := 1 + int(frac*4+0.5)
	return time.Duration(secs) * time.Second
}

// batcher is the classify stage: pull one item, widen the batch under the
// size/age bounds, classify under the stage deadline, record results.
func (p *Pipeline) batcher() {
	defer p.wg.Done()
	for {
		first, ok := p.nextItem()
		if !ok {
			return
		}
		p.classifyBatch(p.fillBatch(first))
	}
}

// nextItem blocks for the next spooled activity; ok=false means the drain
// began and the spool is empty — the belt stops.
func (p *Pipeline) nextItem() (spoolItem, bool) {
	select {
	case it := <-p.spool:
		return it, true
	case <-p.drainCh:
		select {
		case it := <-p.spool:
			return it, true
		default:
			return spoolItem{}, false
		}
	}
}

// fillBatch widens the batch around first until MaxBatch rows, MaxBatchAge
// elapses, or a drain flushes whatever is immediately available.
func (p *Pipeline) fillBatch(first spoolItem) []spoolItem {
	batch := make([]spoolItem, 1, p.cfg.MaxBatch)
	batch[0] = first
	if p.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(p.cfg.MaxBatchAge)
	defer timer.Stop()
	for len(batch) < p.cfg.MaxBatch {
		select {
		case it := <-p.spool:
			batch = append(batch, it)
		case <-timer.C:
			return batch
		case <-p.drainCh:
			for len(batch) < p.cfg.MaxBatch {
				select {
				case it := <-p.spool:
					batch = append(batch, it)
				default:
					return batch
				}
			}
			return batch
		}
	}
	return batch
}

// classifyBatch runs one batch through the classifier and records the
// outcome: predictions to the results journal on success, every member
// back to the backlog on failure or timeout (the replayer retries them).
func (p *Pipeline) classifyBatch(batch []spoolItem) {
	mSpoolDepth.Set(float64(len(p.spool)))
	mSpoolAge.Set(time.Since(batch[0].enq).Seconds())

	profiles := make([][]float64, len(batch))
	for i := range batch {
		profiles[i] = batch[i].elevs
	}
	start := time.Now()
	preds, err := p.classify(profiles)
	mBatchSeconds.ObserveSince(start)
	mBatchSize.Observe(float64(len(batch)))

	if err == nil && len(preds) != len(batch) {
		err = fmt.Errorf("ingest: classifier returned %d predictions for %d profiles",
			len(preds), len(batch))
	}
	if err != nil {
		if errors.Is(err, ErrStageTimeout) {
			p.timeouts.Add(1)
			mBatchTimeouts.Inc()
		} else {
			p.failures.Add(1)
			mBatchFailures.Inc()
		}
		p.logf("ingest: batch of %d failed, requeued: %v", len(batch), err)
		p.mu.Lock()
		for i := range batch {
			delete(p.inflight, batch[i].id)
			p.backlog[batch[i].id] = struct{}{}
		}
		depth := len(p.backlog)
		p.mu.Unlock()
		p.requeued.Add(int64(len(batch)))
		mRequeued.Add(int64(len(batch)))
		mBacklogDepth.Set(float64(depth))
		return
	}

	for i := range batch {
		if err := p.results.Put(batch[i].id, preds[i]); err != nil {
			// A result that cannot be journaled is not delivered: requeue
			// the remainder; already-journaled members of this batch are
			// done.
			p.logf("ingest: recording result for %s: %v", batch[i].id, err)
			p.mu.Lock()
			for j := i; j < len(batch); j++ {
				delete(p.inflight, batch[j].id)
				p.backlog[batch[j].id] = struct{}{}
			}
			p.mu.Unlock()
			p.requeued.Add(int64(len(batch) - i))
			mRequeued.Add(int64(len(batch) - i))
			return
		}
		if batch[i].region != "" {
			mLabeled.Inc()
			if batch[i].region == preds[i] {
				mLabelMatches.Inc()
			}
		}
	}
	p.mu.Lock()
	for i := range batch {
		delete(p.inflight, batch[i].id)
	}
	p.mu.Unlock()
	p.classified.Add(int64(len(batch)))
	mClassified.Add(int64(len(batch)))
}

// classify runs one classifier call under the stage deadline. A call that
// outlives the deadline is abandoned — its eventual result is discarded,
// never recorded — so one wedged stage invocation cannot stall the belt
// forever; the batch replays through a fresh call.
func (p *Pipeline) classify(profiles [][]float64) ([]string, error) {
	if p.cfg.StageTimeout <= 0 {
		return p.cls.ClassifyBatch(profiles)
	}
	type result struct {
		preds []string
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		preds, err := p.cls.ClassifyBatch(profiles)
		ch <- result{preds, err}
	}()
	timer := time.NewTimer(p.cfg.StageTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.preds, r.err
	case <-timer.C:
		return nil, fmt.Errorf("%w (%s)", ErrStageTimeout, p.cfg.StageTimeout)
	}
}

// replayer periodically moves backlog entries into free spool capacity:
// crash recovery at startup and spill recovery after load drops are the
// same loop.
func (p *Pipeline) replayer() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.ReplayInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			p.replayOnce()
		case <-p.drainCh:
			return
		}
	}
}

// replayOnce re-enqueues as many backlog entries as the spool has room
// for, loading each envelope back from the intake journal.
func (p *Pipeline) replayOnce() {
	for {
		p.mu.Lock()
		if len(p.backlog) == 0 || len(p.spool) == cap(p.spool) {
			depth := len(p.backlog)
			p.mu.Unlock()
			mBacklogDepth.Set(float64(depth))
			return
		}
		var id string
		for id = range p.backlog {
			break
		}
		var env Envelope
		ok, err := p.intake.Get(id, &env)
		if !ok || err != nil {
			// A backlog marker without a readable envelope cannot recover;
			// drop it rather than spin on it. (Unreachable in practice:
			// markers are only created after a successful intake append.)
			delete(p.backlog, id)
			p.mu.Unlock()
			p.logf("ingest: backlog entry %s unreadable (ok=%v err=%v), dropped", id, ok, err)
			continue
		}
		item := spoolItem{id: id, region: env.Region, elevs: env.Elevations, enq: time.Now()}
		select {
		case p.spool <- item:
			delete(p.backlog, id)
			p.inflight[id] = struct{}{}
			p.mu.Unlock()
			p.replayed.Add(1)
			mReplayed.Inc()
		default:
			p.mu.Unlock()
			return
		}
	}
}

// Drain is the two-phase stop. Phase one (always): stop accepting, let the
// batcher flush everything already spooled, then flush and close both
// journals. Phase two (ctx cancelled): stop waiting — whatever was not
// classified stays accepted-but-pending in the intake journal and replays
// on the next start. Drain is idempotent; concurrent calls share the same
// shutdown.
func (p *Pipeline) Drain(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	p.mu.Unlock()
	if !already {
		close(p.drainCh)
	}

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	var hardStop error
	select {
	case <-done:
	case <-ctx.Done():
		hardStop = ctx.Err()
	}

	p.closeOnce.Do(func() {
		errIntake := p.intake.Close()
		errResults := p.results.Close()
		if errIntake != nil {
			p.closeErr = errIntake
		} else {
			p.closeErr = errResults
		}
	})
	if hardStop != nil {
		return fmt.Errorf("ingest: hard stop, %d activities left for replay: %w",
			p.PendingLen(), hardStop)
	}
	return p.closeErr
}

// PendingLen is how many accepted activities have no recorded result yet
// (spooled, mid-classify, or backlogged).
func (p *Pipeline) PendingLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.backlog) + len(p.inflight)
}

// Stats is a point-in-time snapshot of the pipeline's accounting.
type Stats struct {
	// Accepted..Requeued are this process's flow counters (metrics.go
	// documents each).
	Accepted      int64 `json:"accepted"`
	Duplicates    int64 `json:"duplicates"`
	Shed          int64 `json:"shed"`
	Spilled       int64 `json:"spilled"`
	Classified    int64 `json:"classified"`
	Replayed      int64 `json:"replayed"`
	Requeued      int64 `json:"requeued"`
	BatchTimeouts int64 `json:"batch_timeouts"`
	BatchFailures int64 `json:"batch_failures"`
	// Restored is the backlog recovered from the journals at open.
	Restored int64 `json:"restored"`
	// SpoolDepth/Backlog/InFlight are instantaneous queue depths.
	SpoolDepth int `json:"spool_depth"`
	Backlog    int `json:"backlog"`
	InFlight   int `json:"in_flight"`
	// Intake and Results are the journals' distinct-key counts; Results is
	// the cross-restart "classified exactly once" ledger the smoke tests
	// poll.
	Intake  int `json:"intake"`
	Results int `json:"results"`
}

// Stats snapshots the counters and depths.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	backlog, inflight := len(p.backlog), len(p.inflight)
	p.mu.Unlock()
	return Stats{
		Accepted:      p.accepted.Load(),
		Duplicates:    p.duplicates.Load(),
		Shed:          p.shed.Load(),
		Spilled:       p.spilled.Load(),
		Classified:    p.classified.Load(),
		Replayed:      p.replayed.Load(),
		Requeued:      p.requeued.Load(),
		BatchTimeouts: p.timeouts.Load(),
		BatchFailures: p.failures.Load(),
		Restored:      p.restored,
		SpoolDepth:    len(p.spool),
		Backlog:       backlog,
		InFlight:      inflight,
		Intake:        p.intake.Len(),
		Results:       p.results.Len(),
	}
}

// ResultIDs returns every classified activity ID in sorted order.
func (p *Pipeline) ResultIDs() []string { return p.results.Keys() }

// Result unmarshals the recorded prediction for id.
func (p *Pipeline) Result(id string) (string, bool) {
	var pred string
	ok, err := p.results.Get(id, &pred)
	if err != nil {
		return "", false
	}
	return pred, ok
}
