package ingest

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultConfig is the seeded fault-injection plan for the classifier stage.
// Faults are drawn per batch from a deterministic stream, so a smoke run
// that wants "the classifier stalls on roughly every third batch" gets the
// same schedule on every run with the same seed.
type FaultConfig struct {
	// Seed fixes the fault schedule. Same seed, same batch order → same
	// faults.
	Seed int64
	// StallProb is the per-batch probability of sleeping Stall before the
	// real classify call — emulates a degraded model server without
	// changing results.
	StallProb float64
	// Stall is how long a stalled batch sleeps.
	Stall time.Duration
	// FailProb is the per-batch probability of returning an injected error
	// instead of classifying — the batch requeues and replays.
	FailProb float64
}

// Enabled reports whether the plan injects anything at all.
func (c FaultConfig) Enabled() bool { return c.StallProb > 0 || c.FailProb > 0 }

// ErrInjected is the error a FailProb activation returns.
var ErrInjected = fmt.Errorf("ingest: injected classifier fault")

// faultClassifier wraps a real classifier with the seeded fault plan.
type faultClassifier struct {
	inner Classifier
	cfg   FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// WithFaults wraps cls with cfg's fault plan. A plan with no probabilities
// set returns cls unchanged.
func WithFaults(cls Classifier, cfg FaultConfig) Classifier {
	if !cfg.Enabled() {
		return cls
	}
	return &faultClassifier{
		inner: cls,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

func (f *faultClassifier) ClassifyBatch(profiles [][]float64) ([]string, error) {
	f.mu.Lock()
	stall := f.rng.Float64() < f.cfg.StallProb
	fail := f.rng.Float64() < f.cfg.FailProb
	f.mu.Unlock()
	if stall {
		mFaults.Inc()
		time.Sleep(f.cfg.Stall)
	}
	if fail {
		mFaults.Inc()
		return nil, ErrInjected
	}
	return f.inner.ClassifyBatch(profiles)
}
