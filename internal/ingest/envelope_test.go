package ingest

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestDecodeLineRoundTrip(t *testing.T) {
	in := Envelope{ID: "wdc-live-000001", Region: "Washington DC", Elevations: []float64{1, 2.5, -3}}
	line, err := EncodeLine(in)
	if err != nil {
		t.Fatal(err)
	}
	// EncodeLine terminates the line; DecodeLine sees scanner-stripped bytes.
	out, err := DecodeLine(line[:len(line)-1], Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Region != in.Region || len(out.Elevations) != len(in.Elevations) {
		t.Fatalf("round trip mangled the envelope: %+v -> %+v", in, out)
	}
}

func TestDecodeLineRejectsHostileInput(t *testing.T) {
	lim := Limits{MaxLineBytes: 256, MaxProfileSamples: 4}
	cases := []struct {
		name string
		line string
	}{
		{"malformed JSON", `{"id":"a","elevations":[1,2`},
		{"truncated line", `{"id":"a","eleva`},
		{"not an object", `[1,2,3]`},
		{"empty id", `{"id":"","elevations":[1]}`},
		{"missing id", `{"elevations":[1]}`},
		{"missing elevations", `{"id":"a"}`},
		{"empty elevations", `{"id":"a","elevations":[]}`},
		{"oversized profile", `{"id":"a","elevations":[1,2,3,4,5]}`},
		{"oversized id", `{"id":"` + strings.Repeat("x", maxIDBytes+1) + `","elevations":[1]}`},
		{"unknown field", `{"id":"a","elevations":[1],"admin":true}`},
		{"smuggled second doc", `{"id":"a","elevations":[1]}{"id":"b","elevations":[2]}`},
		{"non-finite elevation", `{"id":"a","elevations":[1e999]}`},
		{"wrong elevation type", `{"id":"a","elevations":["high"]}`},
	}
	for _, tc := range cases {
		if _, err := DecodeLine([]byte(tc.line), lim); err == nil {
			t.Errorf("%s: decoded without error: %s", tc.name, tc.line)
		}
	}
}

func TestDecodeLineByteBound(t *testing.T) {
	lim := Limits{MaxLineBytes: 64}
	long := `{"id":"a","elevations":[` + strings.Repeat("1,", 40) + `1]}`
	if len(long) <= lim.MaxLineBytes {
		t.Fatalf("test line too short: %d bytes", len(long))
	}
	_, err := DecodeLine([]byte(long), lim)
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("oversized line: err = %v, want ErrLineTooLong", err)
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	e := Envelope{ID: "a", Elevations: []float64{1, math.NaN()}}
	if err := e.Validate(Limits{}); err == nil {
		t.Fatal("NaN elevation validated")
	}
	e = Envelope{ID: "a", Elevations: []float64{math.Inf(1)}}
	if err := e.Validate(Limits{}); err == nil {
		t.Fatal("+Inf elevation validated")
	}
}

// FuzzDecodeLine feeds the decoder hostile bytes: whatever happens, it must
// not panic, must respect the byte bound, and anything it does accept must
// itself validate and survive a re-encode/re-decode round trip.
func FuzzDecodeLine(f *testing.F) {
	f.Add([]byte(`{"id":"a","elevations":[1,2,3]}`))
	f.Add([]byte(`{"id":"a","region":"NYC","elevations":[0.5]}`))
	f.Add([]byte(`{"id":"a","elevations":[1,2`))
	f.Add([]byte(`{"id":"","elevations":[]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"id":"a","elevations":[1e999]}`))
	f.Add([]byte(strings.Repeat(`{"id":"a","elevations":[1]}`, 3)))
	f.Add([]byte("\x00\xff\xfe"))

	lim := Limits{MaxLineBytes: 1 << 12, MaxProfileSamples: 64}
	f.Fuzz(func(t *testing.T, line []byte) {
		env, err := DecodeLine(line, lim)
		if err != nil {
			return
		}
		if len(line) > lim.MaxLineBytes {
			t.Fatalf("accepted a %d-byte line past the %d bound", len(line), lim.MaxLineBytes)
		}
		if err := env.Validate(lim); err != nil {
			t.Fatalf("accepted envelope fails validation: %v", err)
		}
		re, err := EncodeLine(env)
		if err != nil {
			t.Fatalf("re-encoding accepted envelope: %v", err)
		}
		back, err := DecodeLine(re[:len(re)-1], lim)
		if err != nil {
			t.Fatalf("re-decoding %q: %v", re, err)
		}
		if back.ID != env.ID || back.Region != env.Region || len(back.Elevations) != len(env.Elevations) {
			t.Fatalf("round trip mangled %+v into %+v", env, back)
		}
	})
}
