// Package ingest is the live-attack ingestion pipeline: an NDJSON firehose
// of shared workout activities flows through a bounded spooler into batched
// sparse classification against a pre-trained attack model, with durable
// journals making delivery idempotent — an activity acknowledged by the
// front door is classified exactly once, across crashes, with predictions
// byte-identical to the offline batch path.
//
// The pipeline is the harvester→spooler→publisher shape (ROADMAP item 2):
//
//	HTTP POST /ingest ── decode+bound ── intake journal (fsync before ack)
//	      │                                   │
//	      ├── spool (size-bounded channel) ───┤ spool full → backlog (spill)
//	      │                                   │
//	  batcher (size/age bounds) ── classifier (stage deadline, fault-injectable)
//	      │                                   │
//	  results journal (fsync-batched) ◄───────┘ failure → backlog (requeue)
//	      ▲
//	  replayer (drains backlog into the spool when capacity returns;
//	            on restart, backlog = intake − results)
//
// Memory is bounded end to end: the spool is a fixed-capacity channel, the
// backlog is capped by Config.MaxBacklog (past it, accepts shed with 429 so
// pooled clients back off), and per-line decoding enforces MaxLineBytes so a
// hostile upload cannot balloon the heap.
package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"unicode/utf8"
)

// Default decode bounds. MaxLineBytes mirrors persistence.go's
// maxEnvelopeBytes idea at firehose scale: the length is hostile input, so
// it is bounded before any line-sized buffer grows.
const (
	// DefaultMaxLineBytes bounds one NDJSON line (1 MiB holds a ~60k-sample
	// profile; real activities are two orders of magnitude smaller).
	DefaultMaxLineBytes = 1 << 20
	// DefaultMaxProfileSamples bounds one activity's elevation count.
	DefaultMaxProfileSamples = 8192
	// maxIDBytes bounds the activity identifier, which becomes a journal
	// key and a results-dump field.
	maxIDBytes = 256
)

// Envelope is one uploaded activity on the NDJSON firehose: an idempotency
// key, the elevation profile (the only signal the attack needs), and an
// optional ground-truth region label carried through for live accuracy
// accounting in synthetic workloads.
type Envelope struct {
	// ID is the activity's idempotency key: re-uploads of an accepted ID
	// are acknowledged without being re-classified.
	ID string `json:"id"`
	// Region is the optional ground-truth label (synthetic firehoses only).
	Region string `json:"region,omitempty"`
	// Elevations is the activity's elevation profile.
	Elevations []float64 `json:"elevations"`
}

// Limits bounds what the decoder will accept from one hostile line.
type Limits struct {
	// MaxLineBytes bounds one NDJSON line, envelope JSON included.
	MaxLineBytes int
	// MaxProfileSamples bounds the elevation count of one activity.
	MaxProfileSamples int
}

// withDefaults fills zero fields with the package defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxLineBytes <= 0 {
		l.MaxLineBytes = DefaultMaxLineBytes
	}
	if l.MaxProfileSamples <= 0 {
		l.MaxProfileSamples = DefaultMaxProfileSamples
	}
	return l
}

// ErrLineTooLong reports an NDJSON line past Limits.MaxLineBytes. The
// server maps it (and every other decode error) to a 400, never an
// allocation.
var ErrLineTooLong = errors.New("ingest: NDJSON line exceeds the byte bound")

// FormatError describes one malformed firehose line: bad JSON, a missing or
// oversized field, or a non-finite elevation. It is client error, not
// server state — the HTTP layer maps it to 400.
type FormatError struct {
	Detail string
}

func (e *FormatError) Error() string {
	return "ingest: malformed activity line: " + e.Detail
}

// DecodeLine parses and validates one NDJSON activity line under lim. The
// byte bound is checked before the JSON decoder ever runs, so an oversized
// hostile line costs its length check and nothing more. Unknown fields are
// rejected — a typoed field name must fail loudly, not silently drop the
// payload it was meant to carry.
func DecodeLine(line []byte, lim Limits) (Envelope, error) {
	lim = lim.withDefaults()
	var env Envelope
	if len(line) > lim.MaxLineBytes {
		return env, fmt.Errorf("%w: %d bytes > %d", ErrLineTooLong, len(line), lim.MaxLineBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return Envelope{}, &FormatError{Detail: "parsing JSON: " + err.Error()}
	}
	// A second document on the same line is a smuggled record, not trailing
	// whitespace.
	if dec.More() {
		return Envelope{}, &FormatError{Detail: "trailing data after the envelope"}
	}
	if err := env.Validate(lim); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

// Validate checks an envelope against the decode bounds: a non-empty
// bounded ID, a non-empty bounded profile, and finite elevations (the
// classifier's tokenizer rejects NaN/±Inf, so they must be stopped at the
// door, not deep in a batch).
func (e Envelope) Validate(lim Limits) error {
	lim = lim.withDefaults()
	if e.ID == "" {
		return &FormatError{Detail: "empty id"}
	}
	if len(e.ID) > maxIDBytes {
		return &FormatError{Detail: fmt.Sprintf("id is %d bytes, max %d", len(e.ID), maxIDBytes)}
	}
	// The ID becomes a journal key and the region a dump field; invalid
	// UTF-8 would be silently rewritten to U+FFFD on re-encode, breaking
	// the byte-identity story, so it is rejected at the door.
	if !utf8.ValidString(e.ID) {
		return &FormatError{Detail: "id is not valid UTF-8"}
	}
	if !utf8.ValidString(e.Region) {
		return &FormatError{Detail: "region is not valid UTF-8"}
	}
	if len(e.Elevations) == 0 {
		return &FormatError{Detail: "empty elevation profile"}
	}
	if len(e.Elevations) > lim.MaxProfileSamples {
		return &FormatError{Detail: fmt.Sprintf("%d elevation samples, max %d",
			len(e.Elevations), lim.MaxProfileSamples)}
	}
	for i, v := range e.Elevations {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &FormatError{Detail: fmt.Sprintf("non-finite elevation at sample %d", i)}
		}
	}
	return nil
}

// EncodeLine renders the envelope as one NDJSON line, trailing newline
// included — the inverse of DecodeLine, used by firehose generators and the
// offline baseline.
func EncodeLine(e Envelope) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("ingest: encoding envelope %q: %w", e.ID, err)
	}
	return append(b, '\n'), nil
}
