package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"
)

// testClassifier is a deterministic row-independent classifier: the label
// is a pure function of the profile's first sample, so streaming and batch
// paths are comparable. It can be gated shut (batches block until release)
// and counts how many times each profile was classified.
type testClassifier struct {
	gate chan struct{} // nil = always open

	mu      sync.Mutex
	started int             // batches that reached the classifier
	counts  map[float64]int // profile[0] → classify count
}

func newTestClassifier() *testClassifier {
	return &testClassifier{counts: map[float64]int{}}
}

func label(first float64) string { return "region-" + strconv.Itoa(int(first)%4) }

func (c *testClassifier) ClassifyBatch(profiles [][]float64) ([]string, error) {
	c.mu.Lock()
	c.started++
	c.mu.Unlock()
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(profiles))
	for i, p := range profiles {
		c.counts[p[0]]++
		out[i] = label(p[0])
	}
	return out, nil
}

func (c *testClassifier) batchesStarted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

func (c *testClassifier) maxCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0
	for _, n := range c.counts {
		if n > max {
			max = n
		}
	}
	return max
}

func env(i int) Envelope {
	return Envelope{
		ID:         fmt.Sprintf("act-%06d", i),
		Elevations: []float64{float64(i), 1, 2},
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func mustAccept(t *testing.T, p *Pipeline, e Envelope, want Status) {
	t.Helper()
	got, err := p.Accept(e)
	if err != nil && !errors.Is(err, ErrDraining) {
		t.Fatalf("Accept(%s): %v", e.ID, err)
	}
	if got != want {
		t.Fatalf("Accept(%s) = %v, want %v", e.ID, got, want)
	}
}

func TestPipelineClassifiesExactlyOnce(t *testing.T) {
	cls := newTestClassifier()
	p, err := Open(t.TempDir(), Config{Logf: discardLogf, MaxBatch: 8, MaxBatchAge: 5 * time.Millisecond}, cls)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		mustAccept(t, p, env(i), Accepted)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	// Re-uploads of accepted IDs are duplicates, not new work.
	for i := 0; i < 5; i++ {
		mustAccept(t, p, env(i), Duplicate)
	}
	waitFor(t, "all activities classified", func() bool { return p.Stats().Results == n })

	if got := cls.maxCount(); got != 1 {
		t.Fatalf("some activity was classified %d times, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		pred, ok := p.Result(env(i).ID)
		if !ok || pred != label(float64(i)) {
			t.Fatalf("result %s = %q ok=%v, want %q", env(i).ID, pred, ok, label(float64(i)))
		}
	}
	st := p.Stats()
	if st.Accepted != n || st.Duplicates != 5 || st.Classified != n {
		t.Fatalf("stats = %+v", st)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineStreamingMatchesBatchOrder(t *testing.T) {
	// Whatever batch boundaries the spooler picked, the sorted results dump
	// must equal the one-batch-offline computation over the same envelopes.
	cls := newTestClassifier()
	p, err := Open(t.TempDir(), Config{Logf: discardLogf, SpoolDepth: 4, MaxBatch: 3, MaxBatchAge: time.Millisecond}, cls)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	want := map[string]string{}
	for i := 0; i < n; i++ {
		e := env(i)
		want[e.ID] = label(e.Elevations[0])
		for {
			status, err := p.Accept(e)
			if err != nil {
				t.Fatal(err)
			}
			if status != Shed {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(t, "all activities classified", func() bool { return p.Stats().Results == n })

	ids := p.ResultIDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatal("ResultIDs is not sorted")
	}
	if len(ids) != n {
		t.Fatalf("got %d results, want %d", len(ids), n)
	}
	for _, id := range ids {
		pred, _ := p.Result(id)
		if pred != want[id] {
			t.Fatalf("result %s = %q, want %q", id, pred, want[id])
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineCrashRecovery(t *testing.T) {
	// Incarnation one accepts and syncs, but its classifier never returns —
	// then the process "dies" (the pipeline is abandoned mid-flight, journals
	// never closed, exactly what SIGKILL leaves behind).
	dir := t.TempDir()
	stuck := newTestClassifier()
	stuck.gate = make(chan struct{}) // never closed
	p1, err := Open(dir, Config{Logf: discardLogf, SpoolDepth: 64, MaxBatch: 8, MaxBatchAge: time.Millisecond}, stuck)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		mustAccept(t, p1, env(i), Accepted)
	}
	if err := p1.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := p1.Stats().Results; got != 0 {
		t.Fatalf("stuck incarnation classified %d activities", got)
	}
	// p1 is abandoned here: its batcher goroutine stays blocked forever.

	// Incarnation two restores the backlog from the journals and finishes
	// the job — every accepted activity classified exactly once.
	cls := newTestClassifier()
	p2, err := Open(dir, Config{Logf: discardLogf, MaxBatch: 8, MaxBatchAge: time.Millisecond}, cls)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Stats().Restored; got != n {
		t.Fatalf("restored %d activities, want %d", got, n)
	}
	waitFor(t, "replayed activities classified", func() bool { return p2.Stats().Results == n })
	if got := cls.maxCount(); got != 1 {
		t.Fatalf("replay classified some activity %d times, want exactly 1", got)
	}
	// Re-uploading the whole firehose against the restarted instance is all
	// duplicates — the idempotency key survived the crash.
	for i := 0; i < n; i++ {
		mustAccept(t, p2, env(i), Duplicate)
	}
	if got := p2.Stats().Replayed; got != n {
		t.Fatalf("replayed = %d, want %d", got, n)
	}
	if err := p2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineSpillAndReplay(t *testing.T) {
	// A gated classifier wedges the belt: the spool fills, later accepts
	// spill to the durable backlog instead of being refused or lost, and
	// when the classifier recovers everything is classified.
	cls := newTestClassifier()
	cls.gate = make(chan struct{})
	p, err := Open(t.TempDir(), Config{Logf: discardLogf, SpoolDepth: 2, MaxBatch: 1, ReplayInterval: 10 * time.Millisecond}, cls)
	if err != nil {
		t.Fatal(err)
	}
	mustAccept(t, p, env(0), Accepted)
	waitFor(t, "classifier to wedge on the first batch", func() bool { return cls.batchesStarted() == 1 })

	const n = 10
	spilled := 0
	for i := 1; i < n; i++ {
		status, err := p.Accept(env(i))
		if err != nil {
			t.Fatal(err)
		}
		if status == Spilled {
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("nothing spilled with a wedged classifier and a 2-deep spool")
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}

	close(cls.gate) // classifier recovers
	waitFor(t, "spilled activities replayed and classified", func() bool { return p.Stats().Results == n })
	st := p.Stats()
	if st.Spilled != int64(spilled) || st.Replayed < int64(spilled) {
		t.Fatalf("stats = %+v, want spilled=%d and replayed >= that", st, spilled)
	}
	if got := cls.maxCount(); got != 1 {
		t.Fatalf("spill/replay classified some activity %d times", got)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineShedsAtBacklogBound(t *testing.T) {
	cls := newTestClassifier()
	cls.gate = make(chan struct{})
	defer close(cls.gate)
	p, err := Open(t.TempDir(), Config{Logf: discardLogf, SpoolDepth: 1, MaxBatch: 1, MaxBacklog: 2}, cls)
	if err != nil {
		t.Fatal(err)
	}
	mustAccept(t, p, env(0), Accepted)
	waitFor(t, "classifier to wedge", func() bool { return cls.batchesStarted() == 1 })
	mustAccept(t, p, env(1), Accepted) // fills the spool
	mustAccept(t, p, env(2), Spilled)  // backlog 1
	mustAccept(t, p, env(3), Spilled)  // backlog 2 = bound
	status, err := p.Accept(env(4))
	if err != nil {
		t.Fatal(err)
	}
	if status != Shed {
		t.Fatalf("accept past the backlog bound = %v, want Shed", status)
	}
	// A shed envelope was never journaled: it is not a duplicate later.
	if p.intake.Has(env(4).ID) {
		t.Fatal("shed envelope landed in the intake journal")
	}
	if hint := p.RetryAfterHint(); hint < time.Second {
		t.Fatalf("retry hint %v under full backlog, want >= 1s", hint)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); err == nil {
		t.Fatal("hard-stop drain with a wedged classifier reported success")
	}
}

func TestPipelineStageTimeoutRequeues(t *testing.T) {
	// The first batch hangs past the stage deadline; the pipeline abandons
	// it, requeues its members, and a later (healthy) call classifies them.
	var calls sync.Map
	first := make(chan struct{})
	var once sync.Once
	cls := classifierFunc(func(profiles [][]float64) ([]string, error) {
		hang := false
		once.Do(func() { hang = true })
		if hang {
			<-first // held past the deadline; released at test end
		}
		out := make([]string, len(profiles))
		for i, p := range profiles {
			n, _ := calls.LoadOrStore(p[0], new(int))
			*(n.(*int))++
			out[i] = label(p[0])
		}
		return out, nil
	})
	defer close(first)

	p, err := Open(t.TempDir(), Config{Logf: discardLogf, 
		MaxBatch:       4,
		MaxBatchAge:    time.Millisecond,
		StageTimeout:   30 * time.Millisecond,
		ReplayInterval: 10 * time.Millisecond,
	}, cls)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		mustAccept(t, p, env(i), Accepted)
	}
	waitFor(t, "timed-out batch to replay and classify", func() bool { return p.Stats().Results == n })
	st := p.Stats()
	if st.BatchTimeouts == 0 {
		t.Fatalf("stats = %+v, want at least one batch timeout", st)
	}
	if st.Requeued == 0 || st.Replayed == 0 {
		t.Fatalf("stats = %+v, want requeue + replay after the timeout", st)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineRecoversFromInjectedFaults(t *testing.T) {
	// A classifier that fails half its batches (seeded) still converges:
	// failed batches requeue and replay until everything is classified once.
	cls := newTestClassifier()
	faulty := WithFaults(cls, FaultConfig{Seed: 7, FailProb: 0.5})
	p, err := Open(t.TempDir(), Config{Logf: discardLogf, 
		MaxBatch:       4,
		MaxBatchAge:    time.Millisecond,
		ReplayInterval: 5 * time.Millisecond,
	}, faulty)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		mustAccept(t, p, env(i), Accepted)
	}
	waitFor(t, "all activities classified despite faults", func() bool { return p.Stats().Results == n })
	if got := cls.maxCount(); got != 1 {
		t.Fatalf("fault recovery classified some activity %d times", got)
	}
	if p.Stats().BatchFailures == 0 {
		t.Fatal("the seeded fault plan never fired")
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDrainFlushesAndRefuses(t *testing.T) {
	cls := newTestClassifier()
	p, err := Open(t.TempDir(), Config{Logf: discardLogf, MaxBatch: 8, MaxBatchAge: time.Millisecond}, cls)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustAccept(t, p, env(i), Accepted)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Results; got != n {
		t.Fatalf("drain left %d of %d activities unclassified", n-got, n)
	}
	status, err := p.Accept(env(n))
	if status != Shed || !errors.Is(err, ErrDraining) {
		t.Fatalf("accept after drain = %v, %v; want Shed, ErrDraining", status, err)
	}
	// Idempotent: a second drain is a no-op, not a panic or deadlock.
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// discardLogf keeps expected requeue/timeout noise out of test output (and
// avoids logging from pipeline goroutines after a test returns).
func discardLogf(string, ...any) {}

// classifierFunc adapts a function to the Classifier interface.
type classifierFunc func([][]float64) ([]string, error)

func (f classifierFunc) ClassifyBatch(p [][]float64) ([]string, error) { return f(p) }
