package ingest

import "elevprivacy/internal/obs"

// Telemetry for the ingestion pipeline, resolved once at package init so the
// firehose hot path pays only atomic adds.
//
// Flow counters answer "where did every activity go":
//
//	elevpriv_ingest_accepted_total    envelopes journaled and acknowledged
//	elevpriv_ingest_duplicates_total  re-uploads of an already-accepted ID
//	elevpriv_ingest_shed_total        envelopes refused at the door (backlog
//	                                  at MaxBacklog, or draining)
//	elevpriv_ingest_spilled_total     accepted envelopes parked in the
//	                                  backlog because the spool was full
//	elevpriv_ingest_classified_total  predictions recorded to the results
//	                                  journal this process
//	elevpriv_ingest_replayed_total    backlog entries re-enqueued into the
//	                                  spool (crash replay and requeues alike)
//	elevpriv_ingest_restored_total    backlog entries recovered at open
//	                                  (intake − results after a crash)
//	elevpriv_ingest_requeued_total    batch members returned to the backlog
//	                                  by a classifier failure or stage
//	                                  timeout
//	elevpriv_ingest_batch_timeouts_total  batches abandoned past the stage
//	                                      deadline
//	elevpriv_ingest_batch_failures_total  batches whose classifier errored
//	elevpriv_ingest_faults_injected_total seeded fault-injection activations
//	elevpriv_ingest_label_matches_total   live predictions equal to the
//	                                      uploaded ground-truth region
//	elevpriv_ingest_labeled_total         live predictions that had ground
//	                                      truth to compare against
//
// Gauges and histograms answer "is the spooler keeping up":
//
//	elevpriv_ingest_spool_depth        activities queued right now
//	elevpriv_ingest_backlog_depth      accepted-but-unqueued activities
//	elevpriv_ingest_spool_age_seconds  queue age of the oldest member of the
//	                                   batch being formed
//	elevpriv_ingest_batch_seconds      per-batch classify latency
//	elevpriv_ingest_batch_size         activities per classified batch
var (
	mAccepted   = obs.GetCounter("elevpriv_ingest_accepted_total")
	mDuplicates = obs.GetCounter("elevpriv_ingest_duplicates_total")
	mShed       = obs.GetCounter("elevpriv_ingest_shed_total")
	mSpilled    = obs.GetCounter("elevpriv_ingest_spilled_total")
	mClassified = obs.GetCounter("elevpriv_ingest_classified_total")
	mReplayed   = obs.GetCounter("elevpriv_ingest_replayed_total")
	mRestored   = obs.GetCounter("elevpriv_ingest_restored_total")
	mRequeued   = obs.GetCounter("elevpriv_ingest_requeued_total")

	mBatchTimeouts = obs.GetCounter("elevpriv_ingest_batch_timeouts_total")
	mBatchFailures = obs.GetCounter("elevpriv_ingest_batch_failures_total")
	mFaults        = obs.GetCounter("elevpriv_ingest_faults_injected_total")
	mLabelMatches  = obs.GetCounter("elevpriv_ingest_label_matches_total")
	mLabeled       = obs.GetCounter("elevpriv_ingest_labeled_total")

	mSpoolDepth   = obs.GetGauge("elevpriv_ingest_spool_depth")
	mBacklogDepth = obs.GetGauge("elevpriv_ingest_backlog_depth")
	mSpoolAge     = obs.GetGauge("elevpriv_ingest_spool_age_seconds")

	mBatchSeconds = obs.GetHistogram("elevpriv_ingest_batch_seconds", nil)
	mBatchSize    = obs.GetHistogram("elevpriv_ingest_batch_size",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
)
