package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
)

// Server shedding defaults: the front door admits fewer concurrent uploads
// than elevsvc admits queries because each upload can carry many
// activities, and the request deadline must cover a full spool-and-sync
// round trip for a large chunk.
const (
	DefaultMaxInFlight    = 64
	DefaultRequestTimeout = 30 * time.Second
)

// Server is the HTTP front door over a Pipeline.
type Server struct {
	p           *Pipeline
	logf        func(string, ...any)
	maxInFlight int
	reqTimeout  time.Duration
	pprof       bool
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogf overrides the server's log function.
func WithLogf(logf func(string, ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithMaxInFlight overrides the load-shedding bound; 0 disables shedding.
func WithMaxInFlight(n int) ServerOption {
	return func(s *Server) { s.maxInFlight = n }
}

// WithRequestTimeout overrides the per-request deadline; 0 disables it.
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.reqTimeout = d }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof(enabled bool) ServerOption {
	return func(s *Server) { s.pprof = enabled }
}

// NewServer wraps p in the firehose front door.
func NewServer(p *Pipeline, opts ...ServerOption) *Server {
	s := &Server{
		p:           p,
		logf:        func(format string, args ...any) { obs.DefaultLogger().Errorf(format, args...) },
		maxInFlight: DefaultMaxInFlight,
		reqTimeout:  DefaultRequestTimeout,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// UploadResponse acknowledges one firehose request. Every counted activity
// is durable by the time the response is written.
type UploadResponse struct {
	// Accepted counts activities newly journaled by this request
	// (including ones that spilled to the backlog — spilled is a subset).
	Accepted int `json:"accepted"`
	// Duplicates counts re-uploads of already-accepted IDs.
	Duplicates int `json:"duplicates"`
	// Spilled counts accepted activities parked for replay.
	Spilled int `json:"spilled"`
}

// ResultLine is one row of the NDJSON results dump.
type ResultLine struct {
	ID        string `json:"id"`
	Predicted string `json:"predicted"`
}

// Handler returns the service's routing, hardened with dynamic-Retry-After
// shedding: the in-flight bound is the outer backpressure layer, and the
// pipeline's backlog bound is the inner one — both surface to clients as
// 429 + a pressure-scaled hint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleUpload)
	mux.HandleFunc("GET /ingest/results", s.handleResults)
	mux.HandleFunc("GET /ingest/stats", s.handleStats)

	return httpx.NewServeMux(mux, httpx.MuxConfig{
		Service: "ingest",
		Harden: httpx.ServerConfig{
			MaxInFlight:       s.maxInFlight,
			RequestTimeout:    s.reqTimeout,
			DynamicRetryAfter: true,
			Logf:              s.logf,
		},
		Pprof: s.pprof,
	})
}

// handleUpload streams an NDJSON body line by line into the pipeline.
// Any line the pipeline refused to journal fails the whole request — but
// everything accepted before the failure is synced first, so the client's
// retry of the same body lands as duplicates, not double-classifications.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	lim := s.p.cfg.Limits
	sc := bufio.NewScanner(r.Body)
	// The scanner's buffer is the memory bound for hostile lines: a line
	// past MaxLineBytes surfaces as ErrTooLong, never as an allocation.
	sc.Buffer(make([]byte, 64*1024), lim.MaxLineBytes)

	var resp UploadResponse
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		env, err := DecodeLine(line, lim)
		if err != nil {
			s.failUpload(w, http.StatusBadRequest, resp,
				fmt.Sprintf("line %d: %v", lineNo, err))
			return
		}
		status, err := s.p.Accept(env)
		switch status {
		case Accepted:
			resp.Accepted++
		case Spilled:
			resp.Accepted++
			resp.Spilled++
		case Duplicate:
			resp.Duplicates++
		case Shed:
			if err != nil && !errors.Is(err, ErrDraining) {
				var fe *FormatError
				if errors.As(err, &fe) {
					s.failUpload(w, http.StatusBadRequest, resp,
						fmt.Sprintf("line %d: %v", lineNo, err))
					return
				}
				s.logf("ingest: accepting line %d: %v", lineNo, err)
				s.failUpload(w, http.StatusInternalServerError, resp, "internal error")
				return
			}
			code := http.StatusTooManyRequests
			msg := "backlog at capacity, retry later"
			if errors.Is(err, ErrDraining) {
				code = http.StatusServiceUnavailable
				msg = "server is draining, retry against the restarted instance"
			}
			w.Header().Set("Retry-After",
				strconv.Itoa(int(s.p.RetryAfterHint()/time.Second)))
			s.failUpload(w, code, resp, msg)
			return
		}
	}
	if err := sc.Err(); err != nil {
		code := http.StatusBadRequest
		msg := "line " + strconv.Itoa(lineNo+1) + ": " + err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("line %d exceeds the %d-byte bound", lineNo+1, lim.MaxLineBytes)
		}
		s.failUpload(w, code, resp, msg)
		return
	}
	if err := s.p.Sync(); err != nil {
		s.logf("ingest: syncing intake journal: %v", err)
		s.failUpload(w, http.StatusInternalServerError, resp, "internal error")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// failUpload makes the partial progress durable, then reports the error
// alongside what was accepted so far. The durability-before-response order
// is the idempotency contract: an activity counted in any response — even
// an error response — survives a crash immediately after.
func (s *Server) failUpload(w http.ResponseWriter, code int, resp UploadResponse, msg string) {
	if resp.Accepted > 0 {
		if err := s.p.Sync(); err != nil {
			s.logf("ingest: syncing partial upload: %v", err)
			code = http.StatusInternalServerError
			msg = "internal error"
		}
	}
	writeJSON(w, code, struct {
		UploadResponse
		Error string `json:"error"`
	}{resp, msg})
}

// handleResults streams every recorded prediction as NDJSON, sorted by
// activity ID — the live counterpart of the offline baseline dump, and
// byte-comparable against it.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	for _, id := range s.p.ResultIDs() {
		pred, ok := s.p.Result(id)
		if !ok {
			continue
		}
		line, err := json.Marshal(ResultLine{ID: id, Predicted: pred})
		if err != nil {
			s.logf("ingest: encoding result %s: %v", id, err)
			return
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		s.logf("ingest: streaming results: %v", err)
	}
}

// handleStats reports the pipeline's accounting snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.p.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.DefaultLogger().Errorf("ingest: encoding response: %v", err)
	}
}
