package terrain

import (
	"math"
	"testing"
	"testing/quick"

	"elevprivacy/internal/geo"
)

func defaultParams() Params {
	return Params{
		Seed: 42, BaseMeters: 100, ReliefMeters: 50, FeatureKm: 2,
		Octaves: 4, Persistence: 0.5,
	}
}

func mustTerrain(t *testing.T, origin geo.LatLng, p Params) *Terrain {
	t.Helper()
	tr, err := New(origin, p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero feature", func(p *Params) { p.FeatureKm = 0 }},
		{"zero octaves", func(p *Params) { p.Octaves = 0 }},
		{"persistence 0", func(p *Params) { p.Persistence = 0 }},
		{"persistence 1", func(p *Params) { p.Persistence = 1 }},
		{"ridge negative", func(p *Params) { p.RidgeWeight = -0.1 }},
		{"ridge above 1", func(p *Params) { p.RidgeWeight = 1.1 }},
		{"negative relief", func(p *Params) { p.ReliefMeters = -5 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := defaultParams()
			tc.mutate(&p)
			if _, err := New(geo.LatLng{Lat: 40, Lng: -74}, p); err == nil {
				t.Error("New succeeded, want validation error")
			}
		})
	}
	if _, err := New(geo.LatLng{Lat: 95, Lng: 0}, defaultParams()); err == nil {
		t.Error("invalid origin accepted")
	}
}

func TestTerrainDeterminism(t *testing.T) {
	origin := geo.LatLng{Lat: 40, Lng: -74}
	a := mustTerrain(t, origin, defaultParams())
	b := mustTerrain(t, origin, defaultParams())
	for i := 0; i < 50; i++ {
		p := geo.LatLng{Lat: 40 + float64(i)*0.001, Lng: -74 + float64(i)*0.0007}
		ea, err := a.ElevationAt(p)
		if err != nil {
			t.Fatal(err)
		}
		eb, _ := b.ElevationAt(p)
		if ea != eb {
			t.Fatalf("same params disagree at %v: %f vs %f", p, ea, eb)
		}
	}
}

func TestTerrainSeedChangesField(t *testing.T) {
	origin := geo.LatLng{Lat: 40, Lng: -74}
	p1 := defaultParams()
	p2 := defaultParams()
	p2.Seed = 43
	a := mustTerrain(t, origin, p1)
	b := mustTerrain(t, origin, p2)
	var differ int
	for i := 0; i < 50; i++ {
		p := geo.LatLng{Lat: 40 + float64(i)*0.003, Lng: -74}
		ea, _ := a.ElevationAt(p)
		eb, _ := b.ElevationAt(p)
		if math.Abs(ea-eb) > 1 {
			differ++
		}
	}
	if differ < 25 {
		t.Errorf("different seeds produced near-identical fields (%d/50 differ)", differ)
	}
}

func TestTerrainStaysNearBase(t *testing.T) {
	origin := geo.LatLng{Lat: 40, Lng: -74}
	tr := mustTerrain(t, origin, defaultParams())
	f := func(a, b float64) bool {
		p := geo.LatLng{
			Lat: 40 + math.Mod(a, 0.2),
			Lng: -74 + math.Mod(b, 0.2),
		}
		e, err := tr.ElevationAt(p)
		if err != nil {
			return false
		}
		// base 100 ± relief 50 × (1 + default macro weight 1.3), clamped
		// at 0 (no ridge/slope/coast).
		return e >= 0 && e <= 100+50*(1+1.3)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTerrainContinuity(t *testing.T) {
	// Adjacent points 10 m apart must not jump more than a few meters:
	// elevation fields are smooth, not noisy.
	tr := mustTerrain(t, geo.LatLng{Lat: 40, Lng: -74}, defaultParams())
	p := geo.LatLng{Lat: 40.02, Lng: -74.01}
	prev, err := tr.ElevationAt(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p = p.Destination(67, 10) // 10 m steps
		e, err := tr.ElevationAt(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-prev) > 5 {
			t.Fatalf("step %d: 10 m hop changed elevation by %f m", i, math.Abs(e-prev))
		}
		prev = e
	}
}

func TestTerrainInvalidCoordinate(t *testing.T) {
	tr := mustTerrain(t, geo.LatLng{Lat: 40, Lng: -74}, defaultParams())
	if _, err := tr.ElevationAt(geo.LatLng{Lat: 99, Lng: 0}); err == nil {
		t.Error("invalid coordinate accepted")
	}
}

func TestCoastClampsToSeaLevel(t *testing.T) {
	origin := geo.LatLng{Lat: 25.77, Lng: -80.19}
	p := defaultParams()
	p.CoastBearing = 90 // ocean due east
	p.CoastKm = 5
	tr := mustTerrain(t, origin, p)

	// 10 km east of origin is past the coastline: sea level.
	sea := origin.Destination(90, 10000)
	e, err := tr.ElevationAt(sea)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("offshore elevation = %f, want 0", e)
	}

	// 10 km west (inland) keeps full elevation.
	inland := origin.Destination(270, 10000)
	e, err = tr.ElevationAt(inland)
	if err != nil {
		t.Fatal(err)
	}
	if e < 20 {
		t.Errorf("inland elevation = %f, want near base", e)
	}
}

func TestSlopeTiltsField(t *testing.T) {
	origin := geo.LatLng{Lat: 38.85, Lng: -104.80}
	p := defaultParams()
	p.ReliefMeters = 0 // isolate the slope term
	p.SlopePerKm = 10
	p.SlopeBearing = 270 // climbs westward
	tr := mustTerrain(t, origin, p)

	west, _ := tr.ElevationAt(origin.Destination(270, 5000))
	east, _ := tr.ElevationAt(origin.Destination(90, 5000))
	if west-east < 90 || west-east > 110 {
		t.Errorf("10 km westward climb = %f m, want ~100", west-east)
	}
}

func TestRidgeWeightIncreasesVariance(t *testing.T) {
	origin := geo.LatLng{Lat: 38, Lng: -104}
	flatP := defaultParams()
	ridgeP := defaultParams()
	ridgeP.RidgeWeight = 1

	variance := func(tr *Terrain) float64 {
		var sum, sum2 float64
		const n = 400
		for i := 0; i < n; i++ {
			p := geo.LatLng{Lat: 38 + 0.0005*float64(i), Lng: -104}
			e, _ := tr.ElevationAt(p)
			sum += e
			sum2 += e * e
		}
		mean := sum / n
		return sum2/n - mean*mean
	}

	vFlat := variance(mustTerrain(t, origin, flatP))
	vRidge := variance(mustTerrain(t, origin, ridgeP))
	if vRidge <= vFlat {
		t.Errorf("ridged variance %f should exceed rolling variance %f", vRidge, vFlat)
	}
}

func TestRasterizeMatchesAnalyticField(t *testing.T) {
	origin := geo.LatLng{Lat: 40, Lng: -74}
	tr := mustTerrain(t, origin, defaultParams())
	bounds := geo.NewBBox(geo.LatLng{Lat: 40.0, Lng: -74.05}, geo.LatLng{Lat: 40.05, Lng: -74.0})
	raster, err := tr.Rasterize(bounds, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := geo.LatLng{Lat: 40.001 + 0.002*float64(i), Lng: -74.048 + 0.002*float64(i)}
		analytic, _ := tr.ElevationAt(p)
		sampled, err := raster.ElevationAt(p)
		if err != nil {
			t.Fatal(err)
		}
		// int16 quantization + bilinear vs analytic tolerance.
		if math.Abs(analytic-sampled) > 3 {
			t.Errorf("at %v: raster %f vs analytic %f", p, sampled, analytic)
		}
	}
}

func TestRasterizeTile(t *testing.T) {
	tr := mustTerrain(t, geo.LatLng{Lat: 40.5, Lng: -74.5}, defaultParams())
	tile, err := tr.RasterizeTile(40, -75, 101)
	if err != nil {
		t.Fatal(err)
	}
	if tile.Name() != "N40W075" {
		t.Errorf("tile name = %q", tile.Name())
	}
	e, err := tile.ElevationAt(geo.LatLng{Lat: 40.5, Lng: -74.5})
	if err != nil {
		t.Fatal(err)
	}
	analytic, _ := tr.ElevationAt(geo.LatLng{Lat: 40.5, Lng: -74.5})
	if math.Abs(e-analytic) > 3 {
		t.Errorf("tile center %f vs analytic %f", e, analytic)
	}
}

func TestNoiseRange(t *testing.T) {
	n := noise2{seed: 99}
	f := func(a, b float64) bool {
		x := math.Mod(a, 1000)
		y := math.Mod(b, 1000)
		v := n.at(x, y)
		return v >= -1-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFBMRange(t *testing.T) {
	n := noise2{seed: 7}
	f := func(a, b float64) bool {
		v := fbm(n, math.Mod(a, 500), math.Mod(b, 500), 6, 0.5)
		return v >= -1-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmoothEndpoints(t *testing.T) {
	if smooth(0) != 0 || smooth(1) != 1 {
		t.Errorf("smooth endpoints: %f, %f", smooth(0), smooth(1))
	}
	if s := smooth(0.5); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("smooth(0.5) = %f", s)
	}
}

// TestMacroReliefSeparatesNeighborhoods verifies the property borough
// classification depends on: 5 km-apart areas of one city have
// systematically different mean elevations.
func TestMacroReliefSeparatesNeighborhoods(t *testing.T) {
	origin := geo.LatLng{Lat: 37.76, Lng: -122.44}
	tr := mustTerrain(t, origin, defaultParams())

	meanAround := func(center geo.LatLng) float64 {
		var sum float64
		const n = 100
		for i := 0; i < n; i++ {
			p := center.Destination(float64(i*7%360), float64(i%10)*120)
			e, err := tr.ElevationAt(p)
			if err != nil {
				t.Fatal(err)
			}
			sum += e
		}
		return sum / n
	}

	// Sample several 1 km neighborhoods spread across the city; their means
	// must not all collapse to the base elevation.
	var spread float64
	var means []float64
	for i := 0; i < 6; i++ {
		m := meanAround(origin.Destination(float64(i)*60, 5000+float64(i)*1500))
		means = append(means, m)
	}
	minM, maxM := means[0], means[0]
	for _, m := range means {
		minM = math.Min(minM, m)
		maxM = math.Max(maxM, m)
	}
	spread = maxM - minM
	if spread < 15 {
		t.Errorf("neighborhood mean spread = %.1f m (means %v); macro relief too weak for borough separation", spread, means)
	}
}

func TestMacroParamsValidation(t *testing.T) {
	p := defaultParams()
	p.MacroKm = -1
	if _, err := New(geo.LatLng{Lat: 40, Lng: -74}, p); err == nil {
		t.Error("negative MacroKm accepted")
	}
	p = defaultParams()
	p.MacroWeight = -0.5
	if _, err := New(geo.LatLng{Lat: 40, Lng: -74}, p); err == nil {
		t.Error("negative MacroWeight accepted")
	}
}

func TestMacroDefaultsApplied(t *testing.T) {
	tr := mustTerrain(t, geo.LatLng{Lat: 40, Lng: -74}, defaultParams())
	got := tr.Params()
	if got.MacroKm != 6*defaultParams().FeatureKm {
		t.Errorf("MacroKm default = %g", got.MacroKm)
	}
	if got.MacroWeight != 2.0 {
		t.Errorf("MacroWeight default = %g", got.MacroWeight)
	}
}
