package terrain

import (
	"fmt"

	"elevprivacy/internal/geo"
)

// Borough is a named sub-region of a city, mirroring Table III of the paper.
type Borough struct {
	// Name is the borough label, e.g. "Manhattan".
	Name string
	// Bounds is the mining boundary for the borough.
	Bounds geo.BBox
	// TargetSegments is the sample size the paper reports for the borough
	// (Table III); the segment synthesizer populates this many segments.
	TargetSegments int
}

// City is one class of the city-level dataset: a terrain signature, a mining
// boundary, and the borough decomposition when the paper defines one.
type City struct {
	// Name is the full city label, e.g. "New York City".
	Name string
	// Abbrev is the short label used in the paper's tables (NYC, LA, ...).
	Abbrev string
	// Center anchors the city's terrain.
	Center geo.LatLng
	// Bounds is the city-level mining boundary.
	Bounds geo.BBox
	// Params is the city's terrain signature.
	Params Params
	// TargetSegments is the city-level sample size from Table II.
	TargetSegments int
	// Boroughs lists the borough decomposition from Table III; empty for
	// cities the paper only uses at city level.
	Boroughs []Borough
}

// Terrain instantiates the city's terrain field.
func (c *City) Terrain() (*Terrain, error) {
	t, err := New(c.Center, c.Params)
	if err != nil {
		return nil, fmt.Errorf("terrain: city %s: %w", c.Name, err)
	}
	return t, nil
}

// Borough returns the named borough.
func (c *City) Borough(name string) (*Borough, error) {
	for i := range c.Boroughs {
		if c.Boroughs[i].Name == name {
			return &c.Boroughs[i], nil
		}
	}
	return nil, fmt.Errorf("terrain: city %s has no borough %q", c.Name, name)
}

// World returns the paper's ten-city world in Table II order. Each city's
// terrain parameters are tuned to caricature the real city's elevation
// signature: Miami and Tampa are flat coastal plains, Colorado Springs is a
// high piedmont climbing toward the Front Range, San Francisco is rugged
// coastal hills, Duluth slopes down to Lake Superior, and so on.
func World() []*City {
	return []*City{
		{
			Name:   "New York City",
			Abbrev: "NYC",
			Center: geo.LatLng{Lat: 40.75, Lng: -73.97},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 40.55, Lng: -74.20}, geo.LatLng{Lat: 40.90, Lng: -73.70}),
			Params: Params{
				Seed: 101, BaseMeters: 22, ReliefMeters: 24, FeatureKm: 2.6,
				Octaves: 5, Persistence: 0.55,
				CoastBearing: 155, CoastKm: 14,
			},
			TargetSegments: 2437,
			Boroughs: []Borough{
				{Name: "Manhattan", TargetSegments: 2437,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.70, Lng: -74.02}, geo.LatLng{Lat: 40.88, Lng: -73.91})},
				{Name: "Queens", TargetSegments: 353,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.67, Lng: -73.90}, geo.LatLng{Lat: 40.78, Lng: -73.73})},
				{Name: "Brooklyn(South)", TargetSegments: 239,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.57, Lng: -74.03}, geo.LatLng{Lat: 40.645, Lng: -73.90})},
				{Name: "Brooklyn(North)", TargetSegments: 205,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.65, Lng: -74.00}, geo.LatLng{Lat: 40.73, Lng: -73.93})},
				{Name: "Bronx", TargetSegments: 142,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.80, Lng: -73.93}, geo.LatLng{Lat: 40.90, Lng: -73.82})},
				{Name: "Staten Island", TargetSegments: 119,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.50, Lng: -74.25}, geo.LatLng{Lat: 40.62, Lng: -74.05})},
			},
		},
		{
			Name:   "Washington DC",
			Abbrev: "WDC",
			Center: geo.LatLng{Lat: 38.90, Lng: -77.03},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 38.80, Lng: -77.15}, geo.LatLng{Lat: 39.00, Lng: -76.90}),
			Params: Params{
				Seed: 202, BaseMeters: 55, ReliefMeters: 38, FeatureKm: 3.2,
				Octaves: 5, Persistence: 0.5,
			},
			TargetSegments: 2129,
			Boroughs: []Borough{
				{Name: "District of Columbia", TargetSegments: 2129,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 38.85, Lng: -77.09}, geo.LatLng{Lat: 38.95, Lng: -76.95})},
				{Name: "Baltimore", TargetSegments: 218,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 39.25, Lng: -76.68}, geo.LatLng{Lat: 39.35, Lng: -76.55})},
			},
		},
		{
			Name:   "San Francisco",
			Abbrev: "SF",
			Center: geo.LatLng{Lat: 37.76, Lng: -122.44},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 37.70, Lng: -122.52}, geo.LatLng{Lat: 37.82, Lng: -122.36}),
			Params: Params{
				Seed: 303, BaseMeters: 70, ReliefMeters: 85, FeatureKm: 1.7,
				Octaves: 6, Persistence: 0.55, RidgeWeight: 0.35,
				CoastBearing: 270, CoastKm: 8,
			},
			TargetSegments: 743,
			Boroughs: []Borough{
				{Name: "South West", TargetSegments: 743,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 37.70, Lng: -122.52}, geo.LatLng{Lat: 37.76, Lng: -122.44})},
				{Name: "South East", TargetSegments: 144,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 37.70, Lng: -122.44}, geo.LatLng{Lat: 37.76, Lng: -122.36})},
				{Name: "North West", TargetSegments: 130,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 37.76, Lng: -122.52}, geo.LatLng{Lat: 37.82, Lng: -122.44})},
				{Name: "North East", TargetSegments: 86,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 37.76, Lng: -122.44}, geo.LatLng{Lat: 37.82, Lng: -122.36})},
			},
		},
		{
			Name:   "Colorado Springs",
			Abbrev: "CS",
			Center: geo.LatLng{Lat: 38.85, Lng: -104.80},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 38.75, Lng: -104.90}, geo.LatLng{Lat: 38.95, Lng: -104.70}),
			Params: Params{
				Seed: 404, BaseMeters: 1860, ReliefMeters: 130, FeatureKm: 2.8,
				Octaves: 6, Persistence: 0.55, RidgeWeight: 0.45,
				SlopePerKm: 14, SlopeBearing: 270, // climbs westward into the Front Range
			},
			TargetSegments: 369,
		},
		{
			Name:   "Minneapolis",
			Abbrev: "MIN",
			Center: geo.LatLng{Lat: 44.98, Lng: -93.27},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 44.90, Lng: -93.35}, geo.LatLng{Lat: 45.05, Lng: -93.15}),
			Params: Params{
				Seed: 505, BaseMeters: 255, ReliefMeters: 22, FeatureKm: 3.8,
				Octaves: 4, Persistence: 0.5,
			},
			TargetSegments: 363,
		},
		{
			Name:   "Los Angeles",
			Abbrev: "LA",
			Center: geo.LatLng{Lat: 34.05, Lng: -118.30},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 33.95, Lng: -118.55}, geo.LatLng{Lat: 34.15, Lng: -118.15}),
			Params: Params{
				Seed: 606, BaseMeters: 85, ReliefMeters: 65, FeatureKm: 3.0,
				Octaves: 5, Persistence: 0.55, RidgeWeight: 0.2,
				CoastBearing: 225, CoastKm: 16,
			},
			TargetSegments: 280,
			Boroughs: []Borough{
				{Name: "Downtown", TargetSegments: 280,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 34.03, Lng: -118.27}, geo.LatLng{Lat: 34.07, Lng: -118.22})},
				{Name: "Santa Monica", TargetSegments: 128,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 34.00, Lng: -118.52}, geo.LatLng{Lat: 34.05, Lng: -118.44})},
				{Name: "Chinatown", TargetSegments: 46,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 34.058, Lng: -118.25}, geo.LatLng{Lat: 34.08, Lng: -118.225})},
				{Name: "Beverly Hills", TargetSegments: 38,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 34.06, Lng: -118.42}, geo.LatLng{Lat: 34.10, Lng: -118.36})},
			},
		},
		{
			Name:   "New Jersey",
			Abbrev: "NJ",
			Center: geo.LatLng{Lat: 40.72, Lng: -74.10},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 40.65, Lng: -74.25}, geo.LatLng{Lat: 40.82, Lng: -73.97}),
			Params: Params{
				Seed: 707, BaseMeters: 16, ReliefMeters: 18, FeatureKm: 2.4,
				Octaves: 4, Persistence: 0.5,
				CoastBearing: 90, CoastKm: 7,
			},
			TargetSegments: 266,
			Boroughs: []Borough{
				{Name: "Jersey City", TargetSegments: 266,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.69, Lng: -74.09}, geo.LatLng{Lat: 40.75, Lng: -74.03})},
				{Name: "West New York", TargetSegments: 23,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.77, Lng: -74.02}, geo.LatLng{Lat: 40.80, Lng: -73.99})},
				{Name: "Newark", TargetSegments: 28,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 40.70, Lng: -74.20}, geo.LatLng{Lat: 40.77, Lng: -74.14})},
			},
		},
		{
			Name:   "Duluth",
			Abbrev: "DUL",
			Center: geo.LatLng{Lat: 46.79, Lng: -92.10},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 46.72, Lng: -92.20}, geo.LatLng{Lat: 46.85, Lng: -91.95}),
			Params: Params{
				Seed: 808, BaseMeters: 240, ReliefMeters: 75, FeatureKm: 2.0,
				Octaves: 5, Persistence: 0.55,
				SlopePerKm: 18, SlopeBearing: 315, // climbs away from Lake Superior
			},
			TargetSegments: 156,
		},
		{
			Name:   "Miami",
			Abbrev: "MIA",
			Center: geo.LatLng{Lat: 25.77, Lng: -80.19},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 25.70, Lng: -80.25}, geo.LatLng{Lat: 25.85, Lng: -80.10}),
			Params: Params{
				Seed: 909, BaseMeters: 3, ReliefMeters: 3.5, FeatureKm: 4.5,
				Octaves: 3, Persistence: 0.5,
				CoastBearing: 90, CoastKm: 5,
			},
			TargetSegments: 94,
			Boroughs: []Borough{
				{Name: "Downtown", TargetSegments: 67,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 25.76, Lng: -80.205}, geo.LatLng{Lat: 25.795, Lng: -80.18})},
				{Name: "Miami Beach", TargetSegments: 44,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 25.76, Lng: -80.15}, geo.LatLng{Lat: 25.82, Lng: -80.12})},
				{Name: "Virginia Key", TargetSegments: 18,
					Bounds: geo.NewBBox(geo.LatLng{Lat: 25.73, Lng: -80.175}, geo.LatLng{Lat: 25.755, Lng: -80.14})},
			},
		},
		{
			Name:   "Tampa",
			Abbrev: "TPA",
			Center: geo.LatLng{Lat: 27.95, Lng: -82.46},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 27.88, Lng: -82.55}, geo.LatLng{Lat: 28.05, Lng: -82.38}),
			Params: Params{
				Seed: 1010, BaseMeters: 10, ReliefMeters: 7, FeatureKm: 4.0,
				Octaves: 3, Persistence: 0.5,
				CoastBearing: 225, CoastKm: 7,
			},
			TargetSegments: 83,
		},
	}
}

// CityByName returns the world city with the given full name or abbreviation.
func CityByName(world []*City, name string) (*City, error) {
	for _, c := range world {
		if c.Name == name || c.Abbrev == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("terrain: unknown city %q", name)
}

// BoroughCities returns the Table III cities (those with boroughs) in the
// paper's order: LA, Miami, NJ, NYC, SF, WDC.
func BoroughCities(world []*City) []*City {
	order := []string{"LA", "MIA", "NJ", "NYC", "SF", "WDC"}
	out := make([]*City, 0, len(order))
	for _, ab := range order {
		if c, err := CityByName(world, ab); err == nil && len(c.Boroughs) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// AthleteWorld returns the four regions of the paper's user-specific
// dataset (Table I) with the paper's per-region sample sizes. Washington DC
// and New York City reuse their Table II terrain signatures; Orlando and
// San Diego exist only in this dataset.
func AthleteWorld() []*City {
	world := World()
	wdc, _ := CityByName(world, "WDC")
	nyc, _ := CityByName(world, "NYC")

	return []*City{
		{
			Name: "Washington DC", Abbrev: "WDC",
			Center: wdc.Center, Bounds: wdc.Bounds, Params: wdc.Params,
			TargetSegments: 366,
		},
		{
			Name: "Orlando", Abbrev: "ORL",
			Center: geo.LatLng{Lat: 28.54, Lng: -81.38},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 28.45, Lng: -81.48}, geo.LatLng{Lat: 28.62, Lng: -81.28}),
			Params: Params{
				Seed: 1111, BaseMeters: 28, ReliefMeters: 9, FeatureKm: 4.2,
				Octaves: 3, Persistence: 0.5,
			},
			TargetSegments: 232,
		},
		{
			Name: "New York City", Abbrev: "NYC",
			Center: nyc.Center, Bounds: nyc.Bounds, Params: nyc.Params,
			TargetSegments: 120,
		},
		{
			Name: "San Diego", Abbrev: "SD",
			Center: geo.LatLng{Lat: 32.75, Lng: -117.12},
			Bounds: geo.NewBBox(geo.LatLng{Lat: 32.65, Lng: -117.25}, geo.LatLng{Lat: 32.85, Lng: -117.00}),
			Params: Params{
				Seed: 1212, BaseMeters: 75, ReliefMeters: 55, FeatureKm: 2.2,
				Octaves: 5, Persistence: 0.55, RidgeWeight: 0.15,
				CoastBearing: 270, CoastKm: 10,
			},
			TargetSegments: 18,
		},
	}
}
