package terrain

import (
	"math"
	"testing"
)

func TestWorldMatchesPaperTables(t *testing.T) {
	world := World()
	if len(world) != 10 {
		t.Fatalf("world has %d cities, want 10 (Table II)", len(world))
	}

	// Table II order and sample sizes.
	wantCity := []struct {
		name string
		size int
	}{
		{"New York City", 2437},
		{"Washington DC", 2129},
		{"San Francisco", 743},
		{"Colorado Springs", 369},
		{"Minneapolis", 363},
		{"Los Angeles", 280},
		{"New Jersey", 266},
		{"Duluth", 156},
		{"Miami", 94},
		{"Tampa", 83},
	}
	for i, want := range wantCity {
		if world[i].Name != want.name {
			t.Errorf("city %d = %q, want %q", i, world[i].Name, want.name)
		}
		if world[i].TargetSegments != want.size {
			t.Errorf("%s target = %d, want %d", want.name, world[i].TargetSegments, want.size)
		}
	}

	// Table III borough counts.
	wantBoroughs := map[string]int{
		"LA": 4, "MIA": 3, "NJ": 3, "NYC": 6, "SF": 4, "WDC": 2,
	}
	var total int
	for ab, n := range wantBoroughs {
		c, err := CityByName(world, ab)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Boroughs) != n {
			t.Errorf("%s has %d boroughs, want %d", ab, len(c.Boroughs), n)
		}
		total += len(c.Boroughs)
	}
	if total != 22 {
		t.Errorf("total boroughs = %d, want 22 (Table III)", total)
	}
}

func TestWorldCityGeometry(t *testing.T) {
	for _, c := range World() {
		if !c.Bounds.Valid() || c.Bounds.AreaDeg2() == 0 {
			t.Errorf("%s: invalid bounds %v", c.Name, c.Bounds)
		}
		if !c.Bounds.Contains(c.Center) {
			t.Errorf("%s: center %v outside bounds %v", c.Name, c.Center, c.Bounds)
		}
		for _, b := range c.Boroughs {
			if !b.Bounds.Valid() || b.Bounds.AreaDeg2() == 0 {
				t.Errorf("%s/%s: invalid bounds", c.Name, b.Name)
			}
			if b.TargetSegments <= 0 {
				t.Errorf("%s/%s: non-positive target", c.Name, b.Name)
			}
		}
	}
}

func TestWorldTerrainsInstantiable(t *testing.T) {
	for _, c := range World() {
		tr, err := c.Terrain()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		e, err := tr.ElevationAt(c.Center)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if e < 0 || e > 2300 {
			t.Errorf("%s center elevation = %f, implausible", c.Name, e)
		}
	}
}

// TestWorldCitySignaturesSeparable checks the property the whole attack
// depends on: mean elevations across cities must span a wide range, with
// flat coastal cities near sea level and Colorado Springs above 1500 m.
func TestWorldCitySignaturesSeparable(t *testing.T) {
	world := World()
	means := map[string]float64{}
	for _, c := range world {
		tr, err := c.Terrain()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		cells := c.Bounds.Grid(8, 8)
		for _, cell := range cells {
			e, err := tr.ElevationAt(cell.Center())
			if err != nil {
				continue
			}
			sum += e
			n++
		}
		means[c.Abbrev] = sum / float64(n)
	}

	if means["MIA"] > 15 {
		t.Errorf("Miami mean %f too high for a coastal plain", means["MIA"])
	}
	if means["CS"] < 1500 {
		t.Errorf("Colorado Springs mean %f too low for a piedmont city", means["CS"])
	}
	if means["CS"] <= means["DUL"] || means["DUL"] <= means["NYC"] {
		t.Errorf("expected CS > DUL > NYC ordering, got %v", means)
	}
}

func TestCityByName(t *testing.T) {
	world := World()
	for _, key := range []string{"New York City", "NYC"} {
		c, err := CityByName(world, key)
		if err != nil {
			t.Fatal(err)
		}
		if c.Abbrev != "NYC" {
			t.Errorf("CityByName(%q) = %s", key, c.Name)
		}
	}
	if _, err := CityByName(world, "Atlantis"); err == nil {
		t.Error("unknown city accepted")
	}
}

func TestBoroughLookup(t *testing.T) {
	world := World()
	nyc, _ := CityByName(world, "NYC")
	b, err := nyc.Borough("Manhattan")
	if err != nil {
		t.Fatal(err)
	}
	if b.TargetSegments != 2437 {
		t.Errorf("Manhattan target = %d, want 2437", b.TargetSegments)
	}
	if _, err := nyc.Borough("Gotham"); err == nil {
		t.Error("unknown borough accepted")
	}
}

func TestBoroughCitiesOrder(t *testing.T) {
	cities := BoroughCities(World())
	want := []string{"LA", "MIA", "NJ", "NYC", "SF", "WDC"}
	if len(cities) != len(want) {
		t.Fatalf("got %d borough cities, want %d", len(cities), len(want))
	}
	for i, c := range cities {
		if c.Abbrev != want[i] {
			t.Errorf("borough city %d = %s, want %s", i, c.Abbrev, want[i])
		}
	}
}

func TestWorldSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, c := range World() {
		if prev, dup := seen[c.Params.Seed]; dup {
			t.Errorf("cities %s and %s share seed %d", prev, c.Name, c.Params.Seed)
		}
		seen[c.Params.Seed] = c.Name
	}
}

// TestBoroughsMostlyInsideCityTerrain sanity-checks that borough centers
// produce finite elevations on their city's terrain.
func TestBoroughsQueryable(t *testing.T) {
	for _, c := range BoroughCities(World()) {
		tr, err := c.Terrain()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range c.Boroughs {
			e, err := tr.ElevationAt(b.Bounds.Center())
			if err != nil {
				t.Errorf("%s/%s: %v", c.Abbrev, b.Name, err)
			}
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Errorf("%s/%s: elevation %f", c.Abbrev, b.Name, e)
			}
		}
	}
}
