package terrain

import (
	"errors"
	"fmt"
	"math"

	"elevprivacy/internal/dem"
	"elevprivacy/internal/geo"
)

// Params is the elevation signature of a synthetic terrain. Parameters are
// chosen per city to mimic the real city's character (base altitude, hill
// amplitude, how jagged the hills are, coastal flattening).
type Params struct {
	// Seed decorrelates terrains with otherwise identical parameters.
	Seed uint64
	// BaseMeters is the mean elevation.
	BaseMeters float64
	// ReliefMeters scales the hill amplitude around the base.
	ReliefMeters float64
	// FeatureKm is the horizontal size of the dominant terrain features.
	FeatureKm float64
	// Octaves is the number of fBm octaves (detail levels).
	Octaves int
	// Persistence is the per-octave amplitude decay in (0, 1).
	Persistence float64
	// RidgeWeight in [0, 1] blends ridged noise into the fBm for
	// mountainous skylines (0 = rolling hills, 1 = sharp ridges).
	RidgeWeight float64
	// CoastBearing, when CoastKm > 0, is the compass direction (degrees) in
	// which the ocean lies from the terrain origin.
	CoastBearing float64
	// CoastKm is the distance from the origin to the coastline; elevation
	// attenuates toward it and clamps to ~0 beyond it. Zero disables.
	CoastKm float64
	// SlopePerKm adds a constant regional tilt (meters per km) along
	// SlopeBearing, emulating piedmont cities that climb toward mountains.
	SlopePerKm   float64
	SlopeBearing float64
	// MacroKm is the horizontal scale of neighborhood-level relief — the
	// low-frequency component that makes one part of a city sit higher
	// than another (downtown valleys, hillside districts). Zero selects
	// the default 6×FeatureKm.
	MacroKm float64
	// MacroWeight scales the macro component relative to ReliefMeters.
	// Zero selects the default 2.0; boroughs of one city are only
	// distinguishable because of this term.
	MacroWeight float64
}

// withDefaults returns the params with zero-value macro fields resolved.
func (p Params) withDefaults() Params {
	if p.MacroKm == 0 {
		p.MacroKm = 6 * p.FeatureKm
	}
	if p.MacroWeight == 0 {
		p.MacroWeight = 2.0
	}
	return p
}

// validate reports the first problem with the parameter set.
func (p Params) validate() error {
	switch {
	case p.FeatureKm <= 0:
		return fmt.Errorf("terrain: FeatureKm must be positive, got %g", p.FeatureKm)
	case p.Octaves < 1:
		return fmt.Errorf("terrain: Octaves must be >= 1, got %d", p.Octaves)
	case p.Persistence <= 0 || p.Persistence >= 1:
		return fmt.Errorf("terrain: Persistence must be in (0,1), got %g", p.Persistence)
	case p.RidgeWeight < 0 || p.RidgeWeight > 1:
		return fmt.Errorf("terrain: RidgeWeight must be in [0,1], got %g", p.RidgeWeight)
	case p.ReliefMeters < 0:
		return fmt.Errorf("terrain: ReliefMeters must be >= 0, got %g", p.ReliefMeters)
	case p.MacroKm < 0:
		return fmt.Errorf("terrain: MacroKm must be >= 0, got %g", p.MacroKm)
	case p.MacroWeight < 0:
		return fmt.Errorf("terrain: MacroWeight must be >= 0, got %g", p.MacroWeight)
	}
	return nil
}

// Terrain is an analytic, deterministic elevation field anchored at an
// origin coordinate. It implements dem.Source over the whole globe (the
// field is defined everywhere; callers bound it with a BBox if needed).
type Terrain struct {
	params Params
	origin geo.LatLng
	noise  noise2
	// kmPerDegLng is precomputed at the origin latitude.
	kmPerDegLng float64
}

const kmPerDegLat = 111.32

// New creates a terrain anchored at origin.
func New(origin geo.LatLng, params Params) (*Terrain, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if !origin.Valid() {
		return nil, fmt.Errorf("terrain: invalid origin %v", origin)
	}
	params = params.withDefaults()
	return &Terrain{
		params:      params,
		origin:      origin,
		noise:       noise2{seed: mix64(params.Seed)},
		kmPerDegLng: kmPerDegLat * math.Cos(origin.Lat*math.Pi/180),
	}, nil
}

// Params returns the terrain's parameter set.
func (t *Terrain) Params() Params { return t.params }

// Origin returns the anchor coordinate.
func (t *Terrain) Origin() geo.LatLng { return t.origin }

var _ dem.Source = (*Terrain)(nil)

// ElevationAt evaluates the analytic elevation field at p. It never fails
// for valid coordinates.
func (t *Terrain) ElevationAt(p geo.LatLng) (float64, error) {
	if !p.Valid() {
		return 0, errors.New("terrain: invalid coordinate")
	}
	return t.elevationXY(t.toLocalKm(p)), nil
}

// toLocalKm projects p into km east/north of the origin.
func (t *Terrain) toLocalKm(p geo.LatLng) (x, y float64) {
	x = (p.Lng - t.origin.Lng) * t.kmPerDegLng
	y = (p.Lat - t.origin.Lat) * kmPerDegLat
	return x, y
}

// elevationXY evaluates the field in local km coordinates.
func (t *Terrain) elevationXY(x, y float64) float64 {
	pr := t.params
	nx := x / pr.FeatureKm
	ny := y / pr.FeatureKm

	rolling := fbm(t.noise, nx, ny, pr.Octaves, pr.Persistence) // [-1, 1]
	elev := pr.BaseMeters + pr.ReliefMeters*rolling

	// Neighborhood-scale relief: the slow component that gives different
	// parts of the city systematically different elevations.
	if pr.MacroWeight > 0 {
		macro := fbm(noise2{seed: t.noise.seed ^ 0x5A5A5A}, x/pr.MacroKm, y/pr.MacroKm, 3, 0.5)
		elev += pr.MacroWeight * pr.ReliefMeters * macro
	}

	if pr.RidgeWeight > 0 {
		ridge := ridged(noise2{seed: t.noise.seed ^ 0xABCDEF}, nx, ny, pr.Octaves, pr.Persistence)
		elev += pr.RidgeWeight * pr.ReliefMeters * (ridge*2 - 1)
	}

	if pr.SlopePerKm != 0 {
		// Distance along the slope bearing (compass: 0=N, 90=E).
		brg := pr.SlopeBearing * math.Pi / 180
		along := x*math.Sin(brg) + y*math.Cos(brg)
		elev += pr.SlopePerKm * along
	}

	if pr.CoastKm > 0 {
		// Signed distance toward the coast along the coast bearing; at and
		// beyond the coastline, elevation decays to sea level.
		brg := pr.CoastBearing * math.Pi / 180
		toward := x*math.Sin(brg) + y*math.Cos(brg)
		remaining := pr.CoastKm - toward // >0 inland, <=0 at sea
		const shore = 3.0                // km over which land falls to the sea
		switch {
		case remaining <= 0:
			elev = 0
		case remaining < shore:
			elev *= smooth(remaining / shore)
		}
	}

	if elev < 0 {
		elev = 0
	}
	return elev
}

// Rasterize samples the terrain into a raster covering bounds.
func (t *Terrain) Rasterize(bounds geo.BBox, rows, cols int) (*dem.Raster, error) {
	r, err := dem.NewRaster(bounds, rows, cols)
	if err != nil {
		return nil, err
	}
	r.Fill(func(lat, lng float64) float64 {
		return t.elevationXY(t.toLocalKm(geo.LatLng{Lat: lat, Lng: lng}))
	})
	return r, nil
}

// RasterizeTile samples the terrain into the SRTM tile whose south-west
// corner is (swLat, swLng), at the given grid size per side.
func (t *Terrain) RasterizeTile(swLat, swLng, size int) (*dem.Tile, error) {
	tile, err := dem.NewTile(swLat, swLng, size)
	if err != nil {
		return nil, err
	}
	tile.Fill(func(lat, lng float64) float64 {
		return t.elevationXY(t.toLocalKm(geo.LatLng{Lat: lat, Lng: lng}))
	})
	return tile, nil
}
