// Package terrain synthesizes deterministic procedural terrain and defines
// the city/borough world the experiments run on.
//
// The paper's attack works because cities differ strongly in elevation
// statistics (base altitude, relief, ruggedness) while boroughs of one city
// share them. The synthesizer reproduces exactly that structure: each city
// is a fractal-noise terrain with its own signature parameters; boroughs are
// sub-regions of the same terrain and differ only through local detail.
package terrain

import "math"

// noise2 is deterministic 2D value noise: pseudo-random values on an integer
// lattice, blended with a quintic smoothstep. Output is in [-1, 1].
type noise2 struct {
	seed uint64
}

// lattice returns the pseudo-random value in [-1, 1] at integer cell (x, y).
func (n noise2) lattice(x, y int64) float64 {
	h := mix64(uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ n.seed)
	// Take 53 high bits for a uniform float in [0,1), map to [-1,1].
	f := float64(h>>11) / float64(1<<53)
	return 2*f - 1
}

// at evaluates the noise field at continuous coordinates.
func (n noise2) at(x, y float64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	fx := x - x0
	fy := y - y0
	ix := int64(x0)
	iy := int64(y0)

	v00 := n.lattice(ix, iy)
	v10 := n.lattice(ix+1, iy)
	v01 := n.lattice(ix, iy+1)
	v11 := n.lattice(ix+1, iy+1)

	sx := smooth(fx)
	sy := smooth(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// fbm sums octaves of value noise (fractional Brownian motion). Each octave
// doubles frequency (lacunarity 2) and scales amplitude by persistence.
// Output stays roughly within [-1, 1] after normalization.
func fbm(n noise2, x, y float64, octaves int, persistence float64) float64 {
	var sum, norm float64
	amp := 1.0
	freq := 1.0
	for o := 0; o < octaves; o++ {
		// Re-seed per octave so octaves are decorrelated.
		oct := noise2{seed: n.seed + uint64(o)*0x9E3779B97F4A7C15}
		sum += amp * oct.at(x*freq, y*freq)
		norm += amp
		amp *= persistence
		freq *= 2
	}
	if norm == 0 {
		return 0
	}
	return sum / norm
}

// ridged turns fBm into ridge-like terrain: sharp crests where the noise
// crosses zero. Output in [0, 1].
func ridged(n noise2, x, y float64, octaves int, persistence float64) float64 {
	v := fbm(n, x, y, octaves, persistence)
	return 1 - math.Abs(v)
}

// smooth is the quintic fade 6t^5 - 15t^4 + 10t^3 (C2-continuous).
func smooth(t float64) float64 {
	return t * t * t * (t*(t*6-15) + 10)
}

// mix64 is the splitmix64 finalizer, a high-quality 64-bit mixer.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
