package terrain

import (
	"testing"

	"elevprivacy/internal/geo"
)

func BenchmarkElevationAt(b *testing.B) {
	world := World()
	sf, err := CityByName(world, "SF")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sf.Terrain()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.LatLng{Lat: 37.72 + float64(i%100)*0.0008, Lng: -122.5 + float64(i%97)*0.0012}
		if _, err := tr.ElevationAt(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRasterizeTilePortion(b *testing.B) {
	sf, err := CityByName(World(), "SF")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sf.Terrain()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Rasterize(sf.Bounds, 128, 128); err != nil {
			b.Fatal(err)
		}
	}
}
