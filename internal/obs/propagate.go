package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net/http"
	"os"
	"time"
)

// Cross-process trace propagation: a span's identity (trace ID + span ID)
// serializes into a W3C traceparent-style header, so a client span in one
// process and the server spans it caused in N other processes share a trace
// ID and carry real parent links. The httpx client injects the header on
// every attempt; httpx.NewServeMux extracts it and opens a parent-linked
// server span. cmd/elevobs joins the per-process trace rings back into one
// fleet-wide Chrome trace using exactly these IDs.
//
// IDs are 64-bit and process-unique by construction: every tracer draws a
// random base at creation and finalizes `base + counter` through the
// splitmix64 mixer (a bijection, so IDs never collide within a process, and
// the random base makes cross-process collisions a 2^-64-per-pair event).

// TraceHeader is the propagation header name. The value follows the W3C
// traceparent shape (version-traceid-spanid-flags) with the 64-bit trace ID
// zero-padded into the 128-bit field.
const TraceHeader = "Traceparent"

// SpanContext is the serializable identity of a span: which trace it belongs
// to and which span it is. The zero value is "no span".
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// String renders the traceparent header value:
// 00-<032x trace>-<016x span>-01.
func (sc SpanContext) String() string {
	return fmt.Sprintf("00-%032x-%016x-01", sc.Trace, sc.Span)
}

// ParseTraceParent parses a traceparent-style value back into a SpanContext.
// It is lenient about the version and flags fields and takes the low 64 bits
// of the 128-bit trace field; ok is false for anything malformed or zero.
func ParseTraceParent(v string) (sc SpanContext, ok bool) {
	// version(2)-traceid(32)-spanid(16)-flags(2)
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	trace, ok1 := parseHex64(v[19:35]) // low 64 bits of the 128-bit field
	span, ok2 := parseHex64(v[36:52])
	if !ok1 || !ok2 {
		return SpanContext{}, false
	}
	sc = SpanContext{Trace: trace, Span: span}
	return sc, sc.Valid()
}

// parseHex64 decodes exactly 16 lowercase/uppercase hex digits.
func parseHex64(s string) (uint64, bool) {
	var out uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		out = out<<4 | d
	}
	return out, true
}

// SpanContext returns the span's serializable identity; the zero SpanContext
// on a nil span.
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.Trace, Span: s.rec.ID}
}

// remoteCtxKey carries a SpanContext extracted from an incoming request —
// the parent lives in another process, so there is no *Span to hold.
type remoteCtxKey struct{}

// ContextWithRemoteSpan returns a context carrying a remote parent: the next
// StartSpan under it joins the remote trace and links to the remote span.
func ContextWithRemoteSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteCtxKey{}, sc)
}

// SpanContextFrom returns the identity of the span the context carries: the
// in-process span when one is live, else a remote parent put there by
// ContextWithRemoteSpan, else the zero SpanContext.
func SpanContextFrom(ctx context.Context) SpanContext {
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		return p.SpanContext()
	}
	if sc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}

// InjectTraceHeader writes the context's span identity into h. A context
// with no span (tracing off, or an uninstrumented caller) leaves h
// untouched, so propagation costs two context lookups when disabled.
func InjectTraceHeader(ctx context.Context, h http.Header) {
	if sc := SpanContextFrom(ctx); sc.Valid() {
		h.Set(TraceHeader, sc.String())
	}
}

// ExtractTraceHeader parses the propagation header out of h; ok is false
// when absent or malformed.
func ExtractTraceHeader(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceHeader)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceParent(v)
}

// randomIDBase seeds a tracer's ID space: crypto randomness when available,
// clock-and-pid entropy as the fallback (the mixer spreads either).
func randomIDBase() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	return uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64, the
// same mixer shardring.go uses to de-skew FNV.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
