package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Metrics dumps make a resumed run's telemetry cumulative: the CLIs embed
// Registry.Dump() in their checkpoint metadata snapshot, and on -resume
// Registry.Load() adds the previous run's counts back before new work
// starts, so counters and histograms over a crash/resume boundary read as
// one continuous run. (Gauges are point-in-time and are restored by Set —
// live instrumentation overwrites them as soon as the subsystem runs.)

// DumpedMetric is one serialized series.
type DumpedMetric struct {
	// Name is the full series name, labels inlined.
	Name string `json:"name"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Value carries the counter count or gauge value.
	Value float64 `json:"value,omitempty"`
	// Histogram state: bucket upper bounds, per-bucket counts (one longer
	// than Bounds; the last is +Inf), total count, and value sum.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
}

// Dump is a point-in-time snapshot of a whole registry, stable-ordered and
// JSON-serializable for checkpoint metadata.
type Dump struct {
	Metrics []DumpedMetric `json:"metrics"`
}

// Dump snapshots every registered series.
func (r *Registry) Dump() Dump {
	entries := r.snapshot()
	d := Dump{Metrics: make([]DumpedMetric, 0, len(entries))}
	for _, e := range entries {
		m := DumpedMetric{Name: e.name, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			m.Value = float64(e.c.Value())
		case kindGauge:
			m.Value = e.g.Value()
		case kindHistogram:
			m.Bounds = e.h.Bounds()
			m.Buckets = e.h.BucketCounts()
			m.Count = e.h.Count()
			m.Sum = e.h.Sum()
		}
		d.Metrics = append(d.Metrics, m)
	}
	return d
}

// Load folds a previous run's dump into the registry: counters and
// histograms add (telemetry accumulates across a resume), gauges restore the
// dumped value. Series are created as needed; a kind conflict with an
// already-registered series, or histogram bounds that do not match, abort
// with an error.
func (r *Registry) Load(d Dump) error {
	for _, m := range d.Metrics {
		if err := r.loadOne(m); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) loadOne(m DumpedMetric) (err error) {
	// getOrCreate panics on malformed names and kind conflicts — programmer
	// errors at instrumentation sites, but a dump comes from disk, so here
	// they degrade to errors.
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("obs: loading dump: %v", rec)
		}
	}()
	switch m.Kind {
	case "counter":
		r.Counter(m.Name).Add(int64(m.Value))
	case "gauge":
		r.Gauge(m.Name).Set(m.Value)
	case "histogram":
		if len(m.Buckets) != len(m.Bounds)+1 {
			return fmt.Errorf("obs: loading dump: histogram %q has %d buckets for %d bounds",
				m.Name, len(m.Buckets), len(m.Bounds))
		}
		h := r.Histogram(m.Name, m.Bounds)
		if !equalBounds(h.bounds, m.Bounds) {
			return fmt.Errorf("obs: loading dump: histogram %q bounds differ from registered", m.Name)
		}
		for i, c := range m.Buckets {
			h.buckets[i].Add(c)
		}
		h.count.Add(m.Count)
		for {
			old := h.sumBits.Load()
			next := floatBitsAdd(old, m.Sum)
			if h.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
	default:
		return fmt.Errorf("obs: loading dump: series %q has unknown kind %q", m.Name, m.Kind)
	}
	return nil
}

// JSONHandler serves the registry as a Dump in JSON — mount it at
// /metrics.json. This is the federation wire format: cmd/elevobs scrapes it
// and reloads the dump into its fleet registry, so no Prometheus text-format
// parser exists anywhere in the repo.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(r.Dump()); err != nil {
			DefaultLogger().Errorf("obs: rendering /metrics.json: %v", err)
		}
	})
}
