package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled structured logging: key=value lines (or JSON with -log-json)
// replacing the bare log.Printf/fmt.Fprintf status output scattered through
// the servers and CLIs. The level gate is one atomic load, so
// debug-level instrumentation left in hot-ish paths costs nothing when the
// level is info or above.

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way it appears in output.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger writes leveled structured records. Safe for concurrent use; each
// record is assembled in one buffer and written with a single Write under
// the mutex, so concurrent lines never interleave.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	json  bool
	now   func() time.Time // overridden in tests for stable output
}

// NewLogger creates a logger writing at or above level to w; jsonFormat
// selects JSON records over key=value text.
func NewLogger(w io.Writer, level Level, jsonFormat bool) *Logger {
	l := &Logger{w: w, json: jsonFormat, now: time.Now}
	l.level.Store(int32(level))
	return l
}

var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(NewLogger(os.Stderr, LevelInfo, false))
}

// DefaultLogger is the process-wide logger the servers and instrumented
// subsystems report through.
func DefaultLogger() *Logger { return defaultLogger.Load() }

// SetDefaultLogger replaces the process-wide logger (the CLIs call it after
// parsing -log-level/-log-json).
func SetDefaultLogger(l *Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// SetLevel changes the logger's threshold.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether records at level pass the threshold.
func (l *Logger) Enabled(level Level) bool { return int32(level) >= l.level.Load() }

// Debug logs msg with alternating key/value pairs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Errorf is the printf bridge for the logf hooks threaded through the
// servers (panic reports, handler errors).
func (l *Logger) Errorf(format string, args ...any) {
	l.log(LevelError, fmt.Sprintf(format, args...), nil)
}

// Infof is the printf bridge at info level.
func (l *Logger) Infof(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var b strings.Builder
	if l.json {
		b.WriteString(`{"time":`)
		b.WriteString(strconv.Quote(ts))
		b.WriteString(`,"level":`)
		b.WriteString(strconv.Quote(level.String()))
		b.WriteString(`,"msg":`)
		b.WriteString(strconv.Quote(msg))
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(fmt.Sprint(kv[i])))
			b.WriteByte(':')
			b.WriteString(strconv.Quote(fmt.Sprint(kv[i+1])))
		}
		b.WriteString("}\n")
	} else {
		b.WriteString("time=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(level.String())
		b.WriteString(" msg=")
		b.WriteString(quoteIfNeeded(msg))
		for i := 0; i+1 < len(kv); i += 2 {
			b.WriteByte(' ')
			b.WriteString(fmt.Sprint(kv[i]))
			b.WriteByte('=')
			b.WriteString(quoteIfNeeded(fmt.Sprint(kv[i+1])))
		}
		b.WriteByte('\n')
	}
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// quoteIfNeeded quotes values containing spaces, quotes, or control
// characters so key=value lines stay machine-splittable.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	for _, c := range s {
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
