package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("elevpriv_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("elevpriv_test_total"); again != c {
		t.Fatal("get-or-create returned a different counter handle")
	}

	g := r.Gauge(`elevpriv_test_depth{pool="mine"}`)
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{
		"", "9starts_with_digit", "has space", "bad{unterminated",
		`bad{}`, `bad{k=unquoted}`, `bad{k="emb"edded"}`, `bad{k="a,b"}`,
		"dash-ed",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: want panic", name)
				}
			}()
			r.Counter(name)
		}()
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("elevpriv_test_total")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.Gauge("elevpriv_test_total")
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to a
// bound lands in that bound's bucket; values past the last bound land in
// +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("elevpriv_test_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3, 4, 4.5, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (-inf,1], (1,2], (2,4], (4,+inf)
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-116.0000001) > 1e-6 {
		t.Errorf("sum = %g, want 116.0000001", sum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	r := NewRegistry()
	for i, bounds := range [][]float64{
		{1, 1}, {2, 1}, {math.NaN()}, {math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds case %d: want panic", i)
				}
			}()
			r.Histogram("elevpriv_bad_seconds", bounds)
		}()
	}
}

// TestRegistryConcurrency hammers get-or-create and every observation kind
// from many goroutines; run under -race this pins the lock-free handle
// contract.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("elevpriv_conc_total").Inc()
				r.Gauge("elevpriv_conc_depth").Add(1)
				r.Histogram("elevpriv_conc_seconds", nil).Observe(float64(i%7) / 100)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("elevpriv_conc_total").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("elevpriv_conc_depth").Value(); got != workers*iters {
		t.Fatalf("gauge = %g, want %d", got, workers*iters)
	}
	h := r.Histogram("elevpriv_conc_seconds", nil)
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	var bucketTotal uint64
	for _, c := range h.BucketCounts() {
		bucketTotal += c
	}
	if bucketTotal != workers*iters {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*iters)
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`elevpriv_httpx_attempts_total{service="segments"}`).Add(7)
	r.Counter(`elevpriv_httpx_attempts_total{service="elevation"}`).Add(3)
	r.Gauge("elevpriv_pool_queue_depth").Set(2.5)
	h := r.Histogram(`elevpriv_httpx_attempt_seconds{service="segments"}`, []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE elevpriv_httpx_attempt_seconds histogram
elevpriv_httpx_attempt_seconds_bucket{service="segments",le="0.01"} 1
elevpriv_httpx_attempt_seconds_bucket{service="segments",le="0.1"} 3
elevpriv_httpx_attempt_seconds_bucket{service="segments",le="1"} 3
elevpriv_httpx_attempt_seconds_bucket{service="segments",le="+Inf"} 4
elevpriv_httpx_attempt_seconds_sum{service="segments"} 5.105
elevpriv_httpx_attempt_seconds_count{service="segments"} 4
# TYPE elevpriv_httpx_attempts_total counter
elevpriv_httpx_attempts_total{service="elevation"} 3
elevpriv_httpx_attempts_total{service="segments"} 7
# TYPE elevpriv_pool_queue_depth gauge
elevpriv_pool_queue_depth 2.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestDumpLoadCumulative(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("elevpriv_run_total").Add(10)
	r1.Gauge("elevpriv_run_depth").Set(4)
	h1 := r1.Histogram("elevpriv_run_seconds", []float64{1, 2})
	h1.Observe(0.5)
	h1.Observe(1.5)
	d := r1.Dump()

	// A "resumed run" that already did some work of its own.
	r2 := NewRegistry()
	r2.Counter("elevpriv_run_total").Add(5)
	h2 := r2.Histogram("elevpriv_run_seconds", []float64{1, 2})
	h2.Observe(3)
	if err := r2.Load(d); err != nil {
		t.Fatal(err)
	}
	if got := r2.Counter("elevpriv_run_total").Value(); got != 15 {
		t.Errorf("counter after load = %d, want 15", got)
	}
	if got := r2.Gauge("elevpriv_run_depth").Value(); got != 4 {
		t.Errorf("gauge after load = %g, want 4", got)
	}
	if got := h2.Count(); got != 3 {
		t.Errorf("histogram count after load = %d, want 3", got)
	}
	if got := h2.Sum(); got != 5 {
		t.Errorf("histogram sum after load = %g, want 5", got)
	}
	want := []uint64{1, 1, 1}
	for i, c := range h2.BucketCounts() {
		if c != want[i] {
			t.Errorf("bucket %d after load = %d, want %d", i, c, want[i])
		}
	}

	// Bounds mismatch must error, not corrupt.
	r3 := NewRegistry()
	r3.Histogram("elevpriv_run_seconds", []float64{1, 2, 3})
	if err := r3.Load(d); err == nil {
		t.Error("want error loading histogram with different bounds")
	}
	// Kind conflict degrades to an error, not a panic.
	r4 := NewRegistry()
	r4.Gauge("elevpriv_run_total")
	if err := r4.Load(d); err == nil {
		t.Error("want error loading counter over gauge")
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`elevpriv_rt_total{k="v"}`).Add(2)
	h := r.Histogram("elevpriv_rt_seconds", nil)
	h.Observe(0.03)
	d := r.Dump()
	if len(d.Metrics) != 2 {
		t.Fatalf("dump has %d metrics, want 2", len(d.Metrics))
	}
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var d2 Dump
	if err := json.Unmarshal(blob, &d2); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.Load(d2); err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("reloaded registry renders differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}
