package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Run-scoped tracing: lightweight spans with parent/child links, recorded
// into a bounded in-memory ring and exportable as Chrome trace_event JSON
// (load the file at chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off by default and costs two nil checks per instrumentation
// site; the CLIs enable it with -trace-out, which installs a default tracer
// and writes the ring at exit. Span conventions: path-like names,
// coarse-grained units of work — "mine/SF", "explore", "exp/tm1-text",
// "fold/3" — never per-sample or per-request spans (those are histograms'
// job).

// SpanRecord is one finished span as stored in the ring.
type SpanRecord struct {
	// ID and Parent link the span tree; Parent is 0 for roots. IDs are
	// process-unique (random tracer base through a bijective mixer), so
	// rings from different processes can be joined without collisions.
	ID     uint64
	Parent uint64
	// Trace groups every span of one logical request tree, across
	// processes: a root span allocates it, children (local or remote via
	// ContextWithRemoteSpan) inherit it bit for bit.
	Trace uint64
	// Name is the span's path-like label.
	Name string
	// Start and End bound the span's wall-clock interval.
	Start time.Time
	End   time.Time
	// Attrs are optional key/value annotations, in SetAttr order.
	Attrs [][2]string
}

// Duration is the span's wall-clock length.
func (s SpanRecord) Duration() time.Duration { return s.End.Sub(s.Start) }

// Tracer records finished spans into a fixed-capacity ring: when the ring
// is full the oldest spans are overwritten, bounding memory for arbitrarily
// long runs. All methods are safe for concurrent use.
type Tracer struct {
	ids    atomic.Uint64
	idBase uint64

	// droppedC mirrors the ring's overwrite count into the process metrics
	// registry (elevpriv_obs_spans_dropped_total), so silent span loss shows
	// up on /metrics and in fleet federation instead of only in Dropped().
	droppedC *Counter

	mu       sync.Mutex
	ring     []SpanRecord
	next     int
	wrapped  bool
	dropped  uint64
	procName string
}

// DefaultTraceCapacity is the ring size EnableTracing uses when given 0 —
// enough for a full experiment suite plus a city sweep's phase spans.
const DefaultTraceCapacity = 16384

// NewTracer creates a tracer with the given ring capacity (values below 1
// get DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		ring:     make([]SpanRecord, capacity),
		idBase:   randomIDBase(),
		droppedC: defaultRegistry.Counter("elevpriv_obs_spans_dropped_total"),
	}
}

// newID returns the next process-unique 64-bit ID: the bijective mixer over
// base+counter never collides within a tracer, and the random base makes
// cross-process collisions negligible. Zero is reserved for "no ID".
func (t *Tracer) newID() uint64 {
	for {
		if id := mix64(t.idBase + t.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// SetName labels the trace export with the process's service name
// (processName in the Chrome JSON), which the fleet trace merger uses to
// name the per-process lane.
func (t *Tracer) SetName(name string) {
	t.mu.Lock()
	t.procName = name
	t.mu.Unlock()
}

var defaultTracer atomic.Pointer[Tracer]

// EnableTracing installs a process-wide default tracer (capacity 0 means
// DefaultTraceCapacity) and returns it. Until this is called, StartSpan is
// a near-free no-op.
func EnableTracing(capacity int) *Tracer {
	t := NewTracer(capacity)
	defaultTracer.Store(t)
	return t
}

// DefaultTracer returns the process-wide tracer, nil when tracing is off.
func DefaultTracer() *Tracer { return defaultTracer.Load() }

// DisableTracing removes the process-wide tracer, restoring the default-off
// state. Tests that EnableTracing use this so tracing does not leak into
// the rest of the package's tests.
func DisableTracing() { defaultTracer.Store(nil) }

// Span is an in-flight traced operation. A nil *Span (tracing disabled) is
// valid: SetAttr and End are no-ops, so instrumentation sites never branch.
type Span struct {
	tracer *Tracer
	rec    SpanRecord
	mu     sync.Mutex
	ended  bool
}

type spanCtxKey struct{}

// StartSpan begins a span named name under the default tracer, linking it
// to the span already in ctx (if any) and returning a derived context
// carrying the new span. With tracing disabled it returns ctx unchanged and
// a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := DefaultTracer()
	if t == nil {
		return ctx, nil
	}
	return t.StartSpan(ctx, name)
}

// StartSpan begins a span under this tracer; see the package-level
// StartSpan.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	var parent, trace uint64
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		parent, trace = p.rec.ID, p.rec.Trace
	} else if rc, ok := ctx.Value(remoteCtxKey{}).(SpanContext); ok && rc.Valid() {
		// The parent span lives in another process (extracted from an
		// incoming request): link to it and join its trace.
		parent, trace = rc.Span, rc.Trace
	}
	if trace == 0 {
		trace = t.newID()
	}
	s := &Span{
		tracer: t,
		rec: SpanRecord{
			ID:     t.newID(),
			Parent: parent,
			Trace:  trace,
			Name:   name,
			Start:  time.Now(),
		},
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetAttr annotates the span; no-op on a nil or ended span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.rec.Attrs = append(s.rec.Attrs, [2]string{key, value})
	}
	s.mu.Unlock()
}

// End finishes the span and records it into the tracer's ring. Safe to call
// on a nil span; a second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.End = time.Now()
	rec := s.rec
	s.mu.Unlock()
	s.tracer.record(rec)
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
		t.droppedC.Inc()
	}
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Len returns the number of spans currently held (at most the capacity).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// Dropped returns how many spans the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the held spans sorted by start time.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	var out []SpanRecord
	if t.wrapped {
		out = make([]SpanRecord, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.next]...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// chromeEvent is one trace_event entry ("X" = complete event with
// microsecond timestamps relative to the trace epoch).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// EpochMicros anchors the relative timestamps to the wall clock (unix
	// microseconds of the earliest span's start; 0 when the ring is empty).
	// Chrome/Perfetto ignore the extra key; the fleet trace merger uses it
	// to rebase per-process traces onto one shared timeline.
	EpochMicros int64 `json:"epochMicros,omitempty"`
	// ProcessName labels the ring's process (see Tracer.SetName).
	ProcessName string `json:"processName,omitempty"`
}

// WriteChromeTrace exports the ring as Chrome trace_event JSON. Timestamps
// are microseconds since the earliest span's start. The writer is plain
// io.Writer so callers wrap it in the durable atomic writer:
//
//	durable.WriteFileAtomic(path, 0o644, tracer.WriteChromeTrace)
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	t.mu.Lock()
	procName := t.procName
	t.mu.Unlock()
	trace := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
		ProcessName:     procName,
	}
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
		trace.EpochMicros = epoch.UnixMicro()
	}
	for _, s := range spans {
		args := map[string]string{
			"span_id": fmt.Sprintf("%d", s.ID),
		}
		if s.Parent != 0 {
			args["parent_id"] = fmt.Sprintf("%d", s.Parent)
		}
		if s.Trace != 0 {
			args["trace_id"] = fmt.Sprintf("%016x", s.Trace)
		}
		for _, kv := range s.Attrs {
			args[kv[0]] = kv[1]
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
