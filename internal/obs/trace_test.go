package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestSpanParentLinking(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartSpan(context.Background(), "run")
	cctx, child := tr.StartSpan(ctx, "phase")
	_, grand := tr.StartSpan(cctx, "unit")
	grand.SetAttr("label", "SF")
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["run"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["run"].Parent)
	}
	if byName["phase"].Parent != byName["run"].ID {
		t.Errorf("phase parent = %d, want %d", byName["phase"].Parent, byName["run"].ID)
	}
	if byName["unit"].Parent != byName["phase"].ID {
		t.Errorf("unit parent = %d, want %d", byName["unit"].Parent, byName["phase"].ID)
	}
	if got := byName["unit"].Attrs; len(got) != 1 || got[0] != [2]string{"label", "SF"} {
		t.Errorf("unit attrs = %v", got)
	}
}

// TestRingOverflow pins the bounded-memory contract: a full ring overwrites
// the oldest spans and counts the drops.
func TestRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("s%d", i))
		s.End()
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("ring holds %d spans, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	spans := tr.Snapshot()
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+6); s.Name != want {
			t.Errorf("span %d = %s, want %s (oldest must be evicted first)", i, s.Name, want)
		}
	}
}

func TestNilSpanAndDisabledTracing(t *testing.T) {
	// No default tracer installed in this test binary unless a test set one;
	// exercise the nil path directly.
	var s *Span
	s.SetAttr("k", "v") // must not panic
	s.End()

	ctx := context.Background()
	if DefaultTracer() == nil {
		ctx2, sp := StartSpan(ctx, "noop")
		if sp != nil {
			t.Fatal("disabled tracing returned a live span")
		}
		if ctx2 != ctx {
			t.Fatal("disabled tracing derived a new context")
		}
		sp.End()
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(8)
	_, s := tr.StartSpan(context.Background(), "once")
	s.End()
	s.End()
	if got := tr.Len(); got != 1 {
		t.Fatalf("ring holds %d spans after double End, want 1", got)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, root := tr.StartSpan(context.Background(), fmt.Sprintf("worker%d", w))
			for i := 0; i < 50; i++ {
				_, s := tr.StartSpan(ctx, "unit")
				s.SetAttr("i", fmt.Sprint(i))
				s.End()
			}
			root.End()
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != 64 {
		t.Fatalf("ring holds %d spans, want full 64", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartSpan(context.Background(), "suite")
	_, child := tr.StartSpan(ctx, "exp/tm1")
	child.SetAttr("restored", "false")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	if len(decoded.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(decoded.TraceEvents))
	}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %s has negative ts/dur: %v/%v", ev.Name, ev.Ts, ev.Dur)
		}
	}
	// The child must reference its parent's span id.
	var rootID string
	for _, ev := range decoded.TraceEvents {
		if ev.Name == "suite" {
			rootID = ev.Args["span_id"]
		}
	}
	for _, ev := range decoded.TraceEvents {
		if ev.Name == "exp/tm1" {
			if ev.Args["parent_id"] != rootID {
				t.Errorf("child parent_id = %q, want %q", ev.Args["parent_id"], rootID)
			}
			if ev.Args["restored"] != "false" {
				t.Errorf("child attr restored = %q", ev.Args["restored"])
			}
		}
	}
}
