package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

func newTestLogger(level Level, jsonFormat bool) (*Logger, *strings.Builder) {
	var sb strings.Builder
	l := NewLogger(&sb, level, jsonFormat)
	l.now = fixedNow
	return l, &sb
}

// TestLevelFiltering pins the gate: records below the threshold produce no
// output at all.
func TestLevelFiltering(t *testing.T) {
	l, sb := newTestLogger(LevelWarn, false)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	if !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("unexpected lines: %v", lines)
	}

	l.SetLevel(LevelDebug)
	sb.Reset()
	l.Debug("now visible")
	if !strings.Contains(sb.String(), "level=debug") {
		t.Errorf("debug suppressed after SetLevel: %q", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel(verbose) accepted")
	}
}

func TestTextFormat(t *testing.T) {
	l, sb := newTestLogger(LevelInfo, false)
	l.Info("sweep done", "classes", 6, "elapsed", "1.2s", "note", "two words")
	got := sb.String()
	want := `time=2026-08-05T12:00:00Z level=info msg="sweep done" classes=6 elapsed=1.2s note="two words"` + "\n"
	if got != want {
		t.Errorf("text line:\ngot  %q\nwant %q", got, want)
	}
}

func TestJSONFormat(t *testing.T) {
	l, sb := newTestLogger(LevelInfo, true)
	l.Info(`say "hi"`, "k", "v")
	var rec map[string]string
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%q", err, sb.String())
	}
	if rec["level"] != "info" || rec["msg"] != `say "hi"` || rec["k"] != "v" {
		t.Errorf("decoded record = %v", rec)
	}
	if rec["time"] != "2026-08-05T12:00:00Z" {
		t.Errorf("time = %q", rec["time"])
	}
}

func TestLoggerConcurrentLinesDoNotInterleave(t *testing.T) {
	l, sb := newTestLogger(LevelInfo, false)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("line", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "time=") || !strings.Contains(line, "msg=line") {
			t.Fatalf("torn line: %q", line)
		}
	}
}

func TestErrorfBridge(t *testing.T) {
	l, sb := newTestLogger(LevelInfo, false)
	l.Errorf("httpx: panic serving %s: %v", "/v1/x", "boom")
	if !strings.Contains(sb.String(), "level=error") ||
		!strings.Contains(sb.String(), `msg="httpx: panic serving /v1/x: boom"`) {
		t.Errorf("bridge line: %q", sb.String())
	}
}
