package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestSpanContextHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef}
	v := sc.String()
	if len(v) != 55 || !strings.HasPrefix(v, "00-") || !strings.HasSuffix(v, "-01") {
		t.Fatalf("traceparent value %q not in version-traceid-spanid-flags shape", v)
	}
	got, ok := ParseTraceParent(v)
	if !ok || got != sc {
		t.Fatalf("round trip: %q -> %+v (ok=%v), want %+v", v, got, ok, sc)
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-abc-def-01",
		strings.Repeat("0", 55), // right length, no dashes
		"00-0000000000000000ffffffffffffffff-0000000000000000-01",        // zero span ID
		"00-00000000000000000000000000000000-1111111111111111-01",        // zero trace ID
		"00-0000000000000000fffffffffffffffg-1111111111111111-01",        // bad hex in the low 64 bits
		"00-0000000000000000ffffffffffffffff-111111111111111g-01",        // bad hex span ID
		"00-0000000000000000ffffffffffffffff-1111111111111111-01-extras", // too long
	}
	for _, v := range cases {
		if sc, ok := ParseTraceParent(v); ok {
			t.Errorf("ParseTraceParent(%q) accepted as %+v", v, sc)
		}
	}
}

func TestParseTraceParentIsLenientAboutVersionAndFlags(t *testing.T) {
	// Unknown versions and flag bits from other tracers should not break
	// extraction: only the ID fields matter.
	sc, ok := ParseTraceParent("ff-000000000000000000000000000000aa-00000000000000bb-00")
	if !ok || sc.Trace != 0xaa || sc.Span != 0xbb {
		t.Fatalf("lenient parse = %+v (ok=%v)", sc, ok)
	}
}

func TestInjectExtractTraceHeader(t *testing.T) {
	tr := NewTracer(16)
	ctx, span := tr.StartSpan(context.Background(), "client")
	defer span.End()

	h := http.Header{}
	InjectTraceHeader(ctx, h)
	got, ok := ExtractTraceHeader(h)
	if !ok || got != span.SpanContext() {
		t.Fatalf("extract = %+v (ok=%v), want %+v", got, ok, span.SpanContext())
	}

	// A context with no span must not inject anything.
	h2 := http.Header{}
	InjectTraceHeader(context.Background(), h2)
	if v := h2.Get(TraceHeader); v != "" {
		t.Fatalf("spanless context injected %q", v)
	}
	if _, ok := ExtractTraceHeader(h2); ok {
		t.Fatal("extract on empty header reported ok")
	}
}

func TestRemoteParentLinksTraceAcrossProcesses(t *testing.T) {
	// Two tracers stand in for two processes. A span started under a remote
	// context must join the remote trace and link to the remote span.
	client := NewTracer(16)
	server := NewTracer(16)

	_, cs := client.StartSpan(context.Background(), "client")
	remote := cs.SpanContext()
	cs.End()

	ctx := ContextWithRemoteSpan(context.Background(), remote)
	_, ss := server.StartSpan(ctx, "server")
	ss.End()

	rec := server.Snapshot()[0]
	if rec.Trace != remote.Trace {
		t.Fatalf("server span trace %016x, want remote trace %016x", rec.Trace, remote.Trace)
	}
	if rec.Parent != remote.Span {
		t.Fatalf("server span parent %d, want remote span %d", rec.Parent, remote.Span)
	}
	if rec.ID == remote.Span {
		t.Fatal("server span reused the remote span's ID")
	}
}

// BenchmarkPropagationPerAttempt is the full extra work one traced HTTP
// attempt pays for cross-process propagation: format + inject the header on
// the client, extract + parse it on the server, and start the
// remote-parented server span. EXPERIMENTS.md divides this by the measured
// loopback attempt latency to budget the overhead.
func BenchmarkPropagationPerAttempt(b *testing.B) {
	tr := NewTracer(1024)
	ctx, span := tr.StartSpan(context.Background(), "client")
	defer span.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := http.Header{}
		InjectTraceHeader(ctx, h)
		remote, ok := ExtractTraceHeader(h)
		if !ok {
			b.Fatal("header did not round-trip")
		}
		sctx := ContextWithRemoteSpan(context.Background(), remote)
		_, ss := tr.StartSpan(sctx, "srv")
		ss.End()
	}
}

func TestRootSpanAllocatesTrace(t *testing.T) {
	tr := NewTracer(16)
	_, root := tr.StartSpan(context.Background(), "root")
	sc := root.SpanContext()
	root.End()
	if !sc.Valid() {
		t.Fatalf("root span context %+v not valid", sc)
	}
	// An invalid remote context is ignored: the span becomes a fresh root.
	ctx := ContextWithRemoteSpan(context.Background(), SpanContext{})
	_, s2 := tr.StartSpan(ctx, "root2")
	rec2 := s2.SpanContext()
	s2.End()
	if rec2.Trace == sc.Trace {
		t.Fatal("two roots shared a trace ID")
	}
	spans := tr.Snapshot()
	for _, r := range spans {
		if r.Name == "root2" && r.Parent != 0 {
			t.Fatalf("root2 has parent %d, want 0", r.Parent)
		}
	}
}
