package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Prometheus text exposition (version 0.0.4): one # TYPE line per metric
// family, then every series of the family sorted by label block. Histograms
// render the cumulative _bucket/_sum/_count triplet the Prometheus server
// expects.

// WritePrometheus renders every registered metric in Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, e := range r.snapshot() {
		if e.base != lastFamily {
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", e.base, e.kind); err != nil {
				return err
			}
			lastFamily = e.base
		}
		if err := writeSeries(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, e *entry) error {
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(e.base, e.labels, ""), e.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(e.base, e.labels, ""), formatFloat(e.g.Value()))
		return err
	default:
		h := e.h
		counts := h.BucketCounts()
		var cum uint64
		for i, b := range h.bounds {
			cum += counts[i]
			le := formatFloat(b)
			if _, err := fmt.Fprintf(w, "%s %d\n",
				seriesName(e.base+"_bucket", e.labels, `le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s %d\n",
			seriesName(e.base+"_bucket", e.labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n",
			seriesName(e.base+"_sum", e.labels, ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(e.base+"_count", e.labels, ""), h.Count())
		return err
	}
}

// seriesName assembles base + merged label block. extra is an additional
// label pair (the histogram le) appended after the registered labels.
func seriesName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; nothing to do but note it server-side.
			DefaultLogger().Errorf("obs: rendering /metrics: %v", err)
		}
	})
}
