// Package obs is the repo's dependency-free telemetry layer: a concurrent
// metrics registry rendered in Prometheus text format (metrics.go, prom.go),
// run-scoped tracing with Chrome trace_event export (trace.go), and a leveled
// structured logger (log.go). Every subsystem — the httpx transport, the
// durable pool and journal, the miner, featurization, training, evaluation,
// and the three HTTP servers — records into the process-wide default
// registry, so a single /metrics endpoint (or checkpoint metrics dump) shows
// the whole pipeline's health.
//
// The package imports only the standard library, so any package in the repo
// (including the leaf resilience and persistence layers) can instrument
// itself without import cycles.
//
// Metric names follow the elevpriv_<subsystem>_<name> scheme, with constant
// labels inlined in the series name the way they will render:
//
//	obs.GetCounter(`elevpriv_httpx_attempts_total{service="segments"}`).Inc()
//
// Handles are get-or-create and safe for concurrent use; hot paths cache
// them in struct fields or package variables so the registry lookup happens
// once, and each observation is one or two atomic operations.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64, one atomic add per Inc.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are a programmer error but not checked on
// the hot path; the registry dump round-trip preserves whatever is stored).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (queue depths, breaker state).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBitsAdd(old, delta)) {
			return
		}
	}
}

// floatBitsAdd returns the bit pattern of frombits(old)+delta — the CAS
// payload shared by gauge and histogram-sum float adds.
func floatBitsAdd(old uint64, delta float64) uint64 {
	return math.Float64bits(math.Float64frombits(old) + delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bounds, in seconds — a
// latency-shaped ladder from 0.5 ms to 10 s that covers everything from an
// Adam step to a rate-limited sweep call.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: len(bounds)+1 atomic bucket counts
// (the last bucket is +Inf), a total count, and a running sum. Observation
// is a binary search plus two atomic adds — no locks, no allocation.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("obs: histogram bound %d is %v", i, b)
		}
		if i > 0 && bounds[i-1] >= b {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d (%g >= %g)",
				i, bounds[i-1], b)
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; past the last bound lands in
	// the +Inf bucket.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBitsAdd(old, v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the one-liner every
// latency instrumentation site uses.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket counts (len(Bounds())+1; the last is
// the +Inf bucket). Counts are read one atomic at a time, so a snapshot
// taken under concurrent observation may be mid-update across buckets —
// fine for monitoring, which is the use.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered series.
type entry struct {
	name   string // full series name as registered, labels inlined
	base   string // name without the label block
	labels string // label block without braces, "" when unlabeled
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Get-or-create is mutex-guarded; the returned
// handles are lock-free. The zero value is not usable; use NewRegistry or
// the process-wide DefaultRegistry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

var defaultRegistry = NewRegistry()

// DefaultRegistry is the process-wide registry every instrumented subsystem
// records into; /metrics endpoints and checkpoint metric dumps read it.
func DefaultRegistry() *Registry { return defaultRegistry }

// GetCounter returns the named counter from the default registry,
// creating it on first use. Panics on a malformed name or kind mismatch
// (programmer errors, like prometheus.MustRegister).
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns the named gauge from the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns the named histogram from the default registry; nil
// bounds means DefLatencyBuckets.
func GetHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	e := r.getOrCreate(name, kindCounter, nil)
	return e.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	e := r.getOrCreate(name, kindGauge, nil)
	return e.g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (nil means DefLatencyBuckets). The bounds of an
// already-created histogram win; callers re-fetching with different bounds
// is a programmer error and panics.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	e := r.getOrCreate(name, kindHistogram, bounds)
	return e.h
}

func (r *Registry) getOrCreate(name string, kind metricKind, bounds []float64) *entry {
	base, labels, err := parseSeriesName(name)
	if err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Errorf("obs: metric %q already registered as %s, requested %s", name, e.kind, kind))
		}
		if kind == kindHistogram && bounds != nil && !equalBounds(e.h.bounds, bounds) {
			panic(fmt.Errorf("obs: histogram %q already registered with different bounds", name))
		}
		return e
	}
	e := &entry{name: name, base: base, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		h, err := newHistogram(bounds)
		if err != nil {
			panic(err)
		}
		e.h = h
	}
	r.entries[name] = e
	return e
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshot returns the entries sorted by (base, labels) — the render and
// dump order.
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// parseSeriesName splits `base{k="v",k2="v2"}` into base and the label
// block, validating both. Labels are optional; values must not contain
// quotes, backslashes, commas, or newlines (the registry inlines them
// verbatim into the Prometheus exposition).
func parseSeriesName(name string) (base, labels string, err error) {
	base = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return "", "", fmt.Errorf("obs: series %q: unterminated label block", name)
		}
		base, labels = name[:i], name[i+1:len(name)-1]
		if labels == "" {
			return "", "", fmt.Errorf("obs: series %q: empty label block", name)
		}
	}
	if !validMetricName(base) {
		return "", "", fmt.Errorf("obs: invalid metric name %q", base)
	}
	if labels != "" {
		for _, pair := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validMetricName(k) {
				return "", "", fmt.Errorf("obs: series %q: malformed label %q", name, pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", fmt.Errorf("obs: series %q: label %s value must be quoted", name, k)
			}
			if strings.ContainsAny(v[1:len(v)-1], "\"\\\n,") {
				return "", "", fmt.Errorf("obs: series %q: label %s value contains reserved characters", name, k)
			}
		}
	}
	return base, labels, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
