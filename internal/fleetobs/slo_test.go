package fleetobs

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSpecValidates(t *testing.T) {
	good := `{"rules":[
		{"name":"pool-error-rate","kind":"ratio",
		 "num":["elevpriv_pool_failures_total"],"den":["elevpriv_pool_requests_total"],
		 "max":0.1,"min_events":10,"burn_windows":3},
		{"name":"attempt-p99","kind":"p99","metric":"elevpriv_httpx_attempt_seconds","max":0.5}
	]}`
	spec, err := ParseSpec(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 2 {
		t.Fatalf("rules = %d", len(spec.Rules))
	}
	// Defaults fill in.
	if spec.Rules[1].BurnWindows != 2 || spec.Rules[1].MinEvents != 1 {
		t.Fatalf("defaults not applied: %+v", spec.Rules[1])
	}

	bad := []string{
		`{}`,
		`{"rules":[{"name":"x","kind":"p99","max":1}]}`,                          // p99 without metric
		`{"rules":[{"name":"x","kind":"ratio","num":["a"],"max":1}]}`,            // ratio without den
		`{"rules":[{"name":"x","kind":"quantile","metric":"m","max":1}]}`,        // unknown kind
		`{"rules":[{"kind":"p99","metric":"m","max":1}]}`,                        // no name
		`{"rules":[{"name":"x","kind":"p99","metric":"m"}]}`,                     // no bound
		`{"rules":[{"name":"x","kind":"p99","metric":"m","max":1,"typo":true}]}`, // unknown field
	}
	for _, s := range bad {
		if _, err := ParseSpec(strings.NewReader(s)); err == nil {
			t.Errorf("ParseSpec accepted %s", s)
		}
	}
}

func TestBucketQuantile(t *testing.T) {
	h := HistWindow{
		Bounds:  []float64{0.1, 0.5, 1},
		Buckets: []uint64{90, 8, 1, 1}, // 100 observations, 1 past the last bound
		Count:   100,
	}
	if got := bucketQuantile(h, 0.5); got != 0.1 {
		t.Fatalf("p50 = %g, want 0.1", got)
	}
	if got := bucketQuantile(h, 0.99); got != 1 {
		t.Fatalf("p99 = %g, want 1", got)
	}
	if got := bucketQuantile(h, 1); !math.IsInf(got, 1) {
		t.Fatalf("p100 = %g, want +Inf", got)
	}
}

func TestRuleBreached(t *testing.T) {
	maxRule := Rule{Max: 0.1}
	if maxRule.breached(0.05) || !maxRule.breached(0.2) {
		t.Fatal("max bound misjudged")
	}
	minRule := Rule{Min: 0.9} // e.g. cache hit rate
	if minRule.breached(0.95) || !minRule.breached(0.5) {
		t.Fatal("min bound misjudged")
	}
}

// sloInstance is a controllable scrape target: the test moves its counters
// between rounds and its /debug/pprof/profile returns a recognizable blob.
func sloInstance(t *testing.T) (*httptest.Server, map[string]float64) {
	t.Helper()
	counters := map[string]float64{
		"elevpriv_pool_requests_total": 0,
		"elevpriv_pool_failures_total": 0,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok","service":"miner","pid":42,"start_unix":1}`)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		type m struct {
			Name  string  `json:"name"`
			Kind  string  `json:"kind"`
			Value float64 `json:"value"`
		}
		var ms []m
		for name, v := range counters {
			ms = append(ms, m{Name: name, Kind: "counter", Value: v})
		}
		json.NewEncoder(w).Encode(map[string]any{"metrics": ms})
	})
	mux.HandleFunc("/debug/pprof/profile", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fake-pprof-profile"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, counters
}

// TestWatchdogFiresAfterBurnWindows walks a breach through the burn-rate
// accounting: a healthy window, then BurnWindows consecutive breaching
// windows; the alert fires exactly once, with the alert JSON and the
// captured profile on disk.
func TestWatchdogFiresAfterBurnWindows(t *testing.T) {
	srv, counters := sloInstance(t)
	tgt := strings.TrimPrefix(srv.URL, "http://")

	clock := time.Unix(3000, 0)
	fed := NewFederator([]string{tgt}, FederatorConfig{
		Now: func() time.Time { return clock },
	})
	spec, err := ParseSpec(strings.NewReader(`{"rules":[
		{"name":"pool-error-rate","kind":"ratio",
		 "num":["elevpriv_pool_failures_total"],"den":["elevpriv_pool_requests_total"],
		 "max":0.1,"min_events":10,"burn_windows":2}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dog := NewWatchdog(spec, fed)
	dog.AlertDir = dir
	dog.ProfileSeconds = 1
	dog.Client = srv.Client() // the fake profile endpoint answers instantly

	step := func(requests, failures float64) []Alert {
		counters["elevpriv_pool_requests_total"] += requests
		counters["elevpriv_pool_failures_total"] += failures
		clock = clock.Add(time.Second)
		fed.ScrapeOnce(context.Background())
		return dog.Evaluate(clock)
	}

	fed.ScrapeOnce(context.Background())        // baseline
	if fired := step(100, 2); len(fired) != 0 { // 2% — healthy
		t.Fatalf("healthy window fired %+v", fired)
	}
	if fired := step(100, 50); len(fired) != 0 { // 50% — burning 1 of 2
		t.Fatalf("first breaching window fired early: %+v", fired)
	}
	fired := step(100, 60) // 60% — burning 2 of 2: fire
	if len(fired) != 1 {
		t.Fatalf("fired = %+v, want exactly 1 alert", fired)
	}
	a := fired[0]
	if a.Rule != "pool-error-rate" || a.Instance != tgt || a.Service != "miner" {
		t.Fatalf("alert = %+v", a)
	}
	if a.Value <= 0.1 {
		t.Fatalf("alert value = %g, want the breaching ratio", a.Value)
	}
	if a.Profile == "" {
		t.Fatal("no profile captured")
	}
	blob, err := os.ReadFile(a.Profile)
	if err != nil || string(blob) != "fake-pprof-profile" {
		t.Fatalf("captured profile = %q, %v", blob, err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "alert-1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Alert
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Rule != a.Rule || onDisk.Profile != a.Profile {
		t.Fatalf("alert on disk = %+v, want %+v", onDisk, a)
	}

	// Still breaching: no re-fire while the burn continues.
	if fired := step(100, 70); len(fired) != 0 {
		t.Fatalf("sustained burn re-fired: %+v", fired)
	}
	// Recovery resets; a fresh burn fires again.
	if fired := step(100, 0); len(fired) != 0 {
		t.Fatalf("recovery fired: %+v", fired)
	}
	step(100, 90)
	if fired := step(100, 90); len(fired) != 1 {
		t.Fatalf("second burn fired %d alerts, want 1", len(fired))
	}
	if got := len(dog.Alerts()); got != 2 {
		t.Fatalf("total alerts = %d, want 2", got)
	}
}

// TestWatchdogIgnoresQuietWindows: below min_events the rule neither
// breaches nor heals — an idle instance cannot page anyone.
func TestWatchdogIgnoresQuietWindows(t *testing.T) {
	srv, counters := sloInstance(t)
	tgt := strings.TrimPrefix(srv.URL, "http://")
	clock := time.Unix(4000, 0)
	fed := NewFederator([]string{tgt}, FederatorConfig{
		Now: func() time.Time { return clock },
	})
	spec, _ := ParseSpec(strings.NewReader(`{"rules":[
		{"name":"pool-error-rate","kind":"ratio",
		 "num":["elevpriv_pool_failures_total"],"den":["elevpriv_pool_requests_total"],
		 "max":0.1,"min_events":50,"burn_windows":2}
	]}`))
	dog := NewWatchdog(spec, fed)

	fed.ScrapeOnce(context.Background())
	// 5 requests, all failures: 100% error rate, but under min_events.
	counters["elevpriv_pool_requests_total"] += 5
	counters["elevpriv_pool_failures_total"] += 5
	clock = clock.Add(time.Second)
	fed.ScrapeOnce(context.Background())
	if fired := dog.Evaluate(clock); len(fired) != 0 {
		t.Fatalf("quiet window fired %+v", fired)
	}
	clock = clock.Add(time.Second)
	fed.ScrapeOnce(context.Background())
	if fired := dog.Evaluate(clock); len(fired) != 0 {
		t.Fatalf("second quiet window fired %+v", fired)
	}
}
