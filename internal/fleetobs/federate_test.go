package fleetobs

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
)

// target strips the scheme off an httptest URL — the federator addresses
// instances as host:port.
func target(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

// newInstance serves a registry the way every real instance does: through
// httpx.NewServeMux, so /healthz and /metrics.json are the production
// handlers, not test doubles.
func newInstance(t *testing.T, service string, reg *obs.Registry, shard, shards int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(httpx.NewServeMux(nil, httpx.MuxConfig{
		Service: service, Metrics: reg, ShardIndex: shard, ShardCount: shards,
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestFederatedDumpRoundTrip pins the federation wire format: the dump the
// federator holds for an instance is exactly the dump that instance's own
// registry produces — nothing lost, reordered, or rescaled in transit.
func TestFederatedDumpRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(`elevpriv_server_requests_total{service="segsvc"}`).Add(41)
	reg.Counter("elevpriv_obs_spans_dropped_total").Add(7)
	reg.Gauge(`elevpriv_server_in_flight{service="segsvc"}`).Set(3)
	h := reg.Histogram(`elevpriv_server_request_seconds{service="segsvc"}`, nil)
	for _, v := range []float64{0.001, 0.01, 0.2, 3.5} {
		h.Observe(v)
	}
	srv := newInstance(t, "segsvc", reg, 0, 0)

	fed := NewFederator([]string{target(srv)}, FederatorConfig{})
	fed.ScrapeOnce(context.Background())

	got, ok := fed.InstanceDump(target(srv))
	if !ok {
		t.Fatal("instance not scraped")
	}
	want := reg.Dump()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("federated dump differs from the instance's own obs.Dump:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestFleetSumsEqualInstanceSums: the merged registry's unlabeled series
// must equal the sum of every instance's counters, and each instance's
// series must appear with an instance label.
func TestFleetSumsEqualInstanceSums(t *testing.T) {
	const name = `elevpriv_server_requests_total{service="segsvc"}`
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	regA.Counter(name).Add(100)
	regB.Counter(name).Add(23)
	srvA := newInstance(t, "segsvc", regA, 0, 2)
	srvB := newInstance(t, "segsvc", regB, 1, 2)

	fed := NewFederator([]string{target(srvA), target(srvB)}, FederatorConfig{})
	snap := fed.ScrapeOnce(context.Background())

	if got := fed.Merged().Counter(name).Value(); got != 123 {
		t.Fatalf("fleet sum = %d, want 123 (100 + 23)", got)
	}
	labeled := withInstanceLabel(name, target(srvA))
	if got := fed.Merged().Counter(labeled).Value(); got != 100 {
		t.Fatalf("instance-labeled series %s = %d, want 100", labeled, got)
	}
	if got := snap.Fleet[name]; got != 123 {
		t.Fatalf("snapshot fleet sum = %g, want 123", got)
	}
	var shards []int
	for _, is := range snap.Instances {
		if !is.Up {
			t.Fatalf("instance %s reported down: %s", is.Target, is.Error)
		}
		if is.Service != "segsvc" || is.Shards != 2 {
			t.Fatalf("instance identity = %+v", is)
		}
		shards = append(shards, is.Shard)
	}
	if len(shards) != 2 || shards[0] == shards[1] {
		t.Fatalf("shard identities = %v, want two distinct shards", shards)
	}
}

// TestCounterRatesUseInjectedClock: rate deltas are (counter increase)/
// (window seconds), computed against the injected clock, not wall time.
func TestCounterRatesUseInjectedClock(t *testing.T) {
	const name = "elevpriv_httpx_requests_total"
	reg := obs.NewRegistry()
	c := reg.Counter(name)
	c.Add(10)
	srv := newInstance(t, "miner", reg, 0, 0)

	clock := time.Unix(1000, 0)
	fed := NewFederator([]string{target(srv)}, FederatorConfig{
		Now: func() time.Time { return clock },
	})
	fed.ScrapeOnce(context.Background())

	c.Add(30)
	clock = clock.Add(2 * time.Second)
	snap := fed.ScrapeOnce(context.Background())

	rates := snap.Rates[target(srv)]
	if rates == nil {
		t.Fatalf("no rates for %s in %+v", target(srv), snap.Rates)
	}
	if got := rates[name]; got != 15 {
		t.Fatalf("rate = %g req/s, want 15 (30 over 2s)", got)
	}
}

// TestDownInstanceDoesNotPoisonTheFleet: a dead target is marked down with
// its error, while live instances keep federating.
func TestDownInstanceDoesNotPoisonTheFleet(t *testing.T) {
	const name = "elevpriv_server_requests_total"
	reg := obs.NewRegistry()
	reg.Counter(name).Add(5)
	srv := newInstance(t, "segsvc", reg, 0, 0)

	dead := httptest.NewServer(nil)
	deadTarget := target(dead)
	dead.Close()

	fed := NewFederator([]string{target(srv), deadTarget}, FederatorConfig{})
	snap := fed.ScrapeOnce(context.Background())

	if got := snap.Fleet[name]; got != 5 {
		t.Fatalf("fleet sum with one dead target = %g, want 5", got)
	}
	byTarget := map[string]InstanceSnapshot{}
	for _, is := range snap.Instances {
		byTarget[is.Target] = is
	}
	if is := byTarget[deadTarget]; is.Up || is.Error == "" {
		t.Fatalf("dead instance snapshot = %+v, want down with error", is)
	}
	if is := byTarget[target(srv)]; !is.Up {
		t.Fatalf("live instance marked down: %+v", is)
	}
}

// TestWindowsSumDeltasByBaseName: the watchdog input sums counter and
// histogram-bucket increases across label variants of the same base metric.
func TestWindowsSumDeltasByBaseName(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter(`elevpriv_pool_failures_total{service="segments",endpoint="0"}`)
	b := reg.Counter(`elevpriv_pool_failures_total{service="segments",endpoint="1"}`)
	h := reg.Histogram("elevpriv_httpx_attempt_seconds", []float64{0.1, 1})
	srv := newInstance(t, "miner", reg, 0, 0)

	clock := time.Unix(2000, 0)
	fed := NewFederator([]string{target(srv)}, FederatorConfig{
		Now: func() time.Time { return clock },
	})
	fed.ScrapeOnce(context.Background())
	if got := fed.Windows(); len(got) != 0 {
		t.Fatalf("windows after one scrape = %d, want 0 (no pair yet)", len(got))
	}

	a.Add(3)
	b.Add(4)
	h.Observe(0.05)
	h.Observe(5) // +Inf bucket
	clock = clock.Add(time.Second)
	fed.ScrapeOnce(context.Background())

	wins := fed.Windows()
	if len(wins) != 1 {
		t.Fatalf("windows = %d, want 1", len(wins))
	}
	w := wins[0]
	if w.Seconds != 1 {
		t.Fatalf("window seconds = %g, want 1", w.Seconds)
	}
	if got := w.Counters["elevpriv_pool_failures_total"]; got != 7 {
		t.Fatalf("summed counter delta = %g, want 7 (3 + 4 across endpoints)", got)
	}
	hw, ok := w.Hists["elevpriv_httpx_attempt_seconds"]
	if !ok {
		t.Fatal("histogram window missing")
	}
	if hw.Count != 2 || hw.Buckets[0] != 1 || hw.Buckets[2] != 1 {
		t.Fatalf("histogram window = %+v, want 2 observations in buckets 0 and +Inf", hw)
	}
}
