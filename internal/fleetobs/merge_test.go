package fleetobs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"elevprivacy/internal/obs"
)

// writeTrace exports a tracer to a file the way obsboot does at Close.
func writeTrace(t *testing.T, dir, name string, tr *obs.Tracer) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeTracesLinksAcrossProcesses: two tracers stand in for a client
// process and a server process; the merged trace must put each on its own
// lane, keep the cross-process parent link, and count it.
func TestMergeTracesLinksAcrossProcesses(t *testing.T) {
	client := obs.NewTracer(64)
	client.SetName("miner")
	server := obs.NewTracer(64)
	server.SetName("segsvc")

	ctx, cs := client.StartSpan(context.Background(), "sweep/explore")
	remote := cs.SpanContext()
	_, ss := server.StartSpan(obs.ContextWithRemoteSpan(context.Background(), remote), "srv/segsvc")
	ss.End()
	cs.End()
	_ = ctx

	// A second, purely local trace on the client side must not become a
	// cross-process link.
	_, solo := client.StartSpan(context.Background(), "local/only")
	solo.End()

	dir := t.TempDir()
	paths := []string{
		writeTrace(t, dir, "miner.json", client),
		writeTrace(t, dir, "segsvc.json", server),
	}

	var out bytes.Buffer
	sum, err := MergeTraces(&out, paths)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Files != 2 || sum.Processes != 2 {
		t.Fatalf("summary = %+v, want 2 files and 2 processes with spans", sum)
	}
	if sum.Spans != 3 {
		t.Fatalf("spans = %d, want 3", sum.Spans)
	}
	if sum.CrossLinks != 1 {
		t.Fatalf("cross links = %d, want exactly 1", sum.CrossLinks)
	}
	if sum.Traces != 2 || sum.CrossProcessTraces != 1 {
		t.Fatalf("traces = %d / cross-process = %d, want 2 / 1", sum.Traces, sum.CrossProcessTraces)
	}

	var merged struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	lanes := map[string]int{}     // process name → pid
	spanLanes := map[string]int{} // span name → pid
	var crossAnnotated bool
	for _, ev := range merged.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			lanes[ev.Args["name"]] = ev.Pid
			continue
		}
		spanLanes[ev.Name] = ev.Pid
		if ev.Name == "srv/segsvc" && ev.Args["cross_process"] == "true" {
			crossAnnotated = true
		}
	}
	if lanes["miner"] == 0 || lanes["segsvc"] == 0 || lanes["miner"] == lanes["segsvc"] {
		t.Fatalf("process lanes = %v, want two distinct named lanes", lanes)
	}
	if spanLanes["sweep/explore"] != lanes["miner"] || spanLanes["srv/segsvc"] != lanes["segsvc"] {
		t.Fatalf("spans not on their process's lane: %v vs %v", spanLanes, lanes)
	}
	if !crossAnnotated {
		t.Fatal("cross-process server span not annotated cross_process=true")
	}
}

// TestMergeTracesRebasesEpochs: files with different epochs land on one
// shared timeline — a span that started later in wall time must not start
// earlier in the merged trace just because its file's relative clock is
// smaller.
func TestMergeTracesRebasesEpochs(t *testing.T) {
	early := []byte(`{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"span_id":"1"}}],"displayTimeUnit":"ms","epochMicros":1000000}`)
	late := []byte(`{"traceEvents":[{"name":"b","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"span_id":"2"}}],"displayTimeUnit":"ms","epochMicros":1500000}`)
	dir := t.TempDir()
	pe := filepath.Join(dir, "early.json")
	pl := filepath.Join(dir, "late.json")
	if err := os.WriteFile(pe, early, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pl, late, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if _, err := MergeTraces(&out, []string{pl, pe}); err != nil {
		t.Fatal(err)
	}
	var merged struct {
		EpochMicros int64 `json:"epochMicros"`
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.EpochMicros != 1000000 {
		t.Fatalf("merged epoch = %d, want the earliest file's 1000000", merged.EpochMicros)
	}
	ts := map[string]float64{}
	for _, ev := range merged.TraceEvents {
		if ev.Ph != "M" {
			ts[ev.Name] = ev.Ts
		}
	}
	if ts["a"] != 0 || ts["b"] != 500000 {
		t.Fatalf("rebased timestamps = %v, want a=0 b=500000", ts)
	}
}
