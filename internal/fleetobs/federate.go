package fleetobs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"elevprivacy/internal/obs"
)

// Identity is what an instance's /healthz reports about itself — the mux
// (httpx.NewServeMux) stamps service, shard, pid, and process start time so
// the federator can label instances without out-of-band configuration.
type Identity struct {
	Status    string `json:"status"`
	Service   string `json:"service"`
	Shard     int    `json:"shard"`
	Shards    int    `json:"shards"`
	PID       int    `json:"pid"`
	StartUnix int64  `json:"start_unix"`
}

// instanceState is the federator's view of one scrape target: the latest
// and previous dumps (the pair every delta — rates, SLO windows — is
// computed from) plus identity and liveness.
type instanceState struct {
	target     string
	id         Identity
	up         bool
	lastErr    string
	dump       obs.Dump
	prevDump   obs.Dump
	lastScrape time.Time
	prevScrape time.Time
	scrapes    int
}

// InstanceSnapshot is one instance's slice of the fleet snapshot.
type InstanceSnapshot struct {
	Target     string             `json:"target"`
	Service    string             `json:"service,omitempty"`
	Shard      int                `json:"shard"`
	Shards     int                `json:"shards"`
	PID        int                `json:"pid,omitempty"`
	StartUnix  int64              `json:"start_unix,omitempty"`
	Up         bool               `json:"up"`
	Error      string             `json:"error,omitempty"`
	LastScrape time.Time          `json:"last_scrape"`
	Counters   map[string]float64 `json:"counters,omitempty"`
}

// Snapshot is the JSON fleet view served at /fleet.json: per-instance
// counters, fleet-wide sums, and per-second rate deltas over the last
// scrape window.
type Snapshot struct {
	Time      time.Time          `json:"time"`
	Instances []InstanceSnapshot `json:"instances"`
	// Fleet sums each counter series (name without the instance label)
	// across every up instance.
	Fleet map[string]float64 `json:"fleet,omitempty"`
	// Rates maps target → counter series → per-second increase over that
	// instance's last scrape window.
	Rates map[string]map[string]float64 `json:"rates,omitempty"`
}

// HistWindow is one histogram's activity inside a scrape window: bucket
// count deltas against the same bounds.
type HistWindow struct {
	Bounds  []float64
	Buckets []uint64
	Count   uint64
}

// Window is everything the SLO watchdog needs about one instance's last
// scrape interval: counter increases and histogram bucket increases, both
// keyed by base metric name (labels summed away — a ratio rule over
// elevpriv_pool_failures_total should not care which endpoint label the
// failures carry).
type Window struct {
	Target   string
	Identity Identity
	Seconds  float64
	Counters map[string]float64
	Hists    map[string]HistWindow
}

// Federator scrapes a fixed set of instances and maintains the merged
// fleet registry, the fleet snapshot, and per-instance scrape windows.
type Federator struct {
	targets []string
	client  *http.Client
	now     func() time.Time

	mu        sync.Mutex
	instances map[string]*instanceState
	merged    *obs.Registry
	snap      Snapshot
}

// FederatorConfig tunes NewFederator; zero values get sane defaults.
type FederatorConfig struct {
	// Client performs the scrapes; nil uses a 5 s-timeout client.
	Client *http.Client
	// Now is the clock; nil uses time.Now. Injectable so rate and window
	// math is testable without sleeping.
	Now func() time.Time
}

// NewFederator builds a federator over host:port scrape targets.
func NewFederator(targets []string, cfg FederatorConfig) *Federator {
	f := &Federator{
		targets:   append([]string(nil), targets...),
		client:    cfg.Client,
		now:       cfg.Now,
		instances: make(map[string]*instanceState),
		merged:    obs.NewRegistry(),
	}
	if f.client == nil {
		f.client = &http.Client{Timeout: 5 * time.Second}
	}
	if f.now == nil {
		f.now = time.Now
	}
	for _, t := range f.targets {
		f.instances[t] = &instanceState{target: t}
	}
	return f
}

// scrapeResult is one target's fetch, before it is folded in under the lock.
type scrapeResult struct {
	target string
	id     Identity
	dump   obs.Dump
	err    error
}

// ScrapeOnce fetches /healthz and /metrics.json from every target
// concurrently, then rebuilds the merged registry and the fleet snapshot.
// Per-target failures mark that instance down; they do not fail the round.
func (f *Federator) ScrapeOnce(ctx context.Context) Snapshot {
	results := make([]scrapeResult, len(f.targets))
	var wg sync.WaitGroup
	for i, target := range f.targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			results[i] = f.scrapeTarget(ctx, target)
		}(i, target)
	}
	wg.Wait()

	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, res := range results {
		st := f.instances[res.target]
		if res.err != nil {
			st.up = false
			st.lastErr = res.err.Error()
			continue
		}
		st.up = true
		st.lastErr = ""
		st.id = res.id
		st.prevDump, st.dump = st.dump, res.dump
		st.prevScrape, st.lastScrape = st.lastScrape, now
		st.scrapes++
	}
	f.rebuildLocked(now)
	return f.snap
}

func (f *Federator) scrapeTarget(ctx context.Context, target string) scrapeResult {
	res := scrapeResult{target: target}
	if err := f.getJSON(ctx, target, "/healthz", &res.id); err != nil {
		res.err = err
		return res
	}
	if err := f.getJSON(ctx, target, "/metrics.json", &res.dump); err != nil {
		res.err = err
	}
	return res
}

func (f *Federator) getJSON(ctx context.Context, target, path string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+target+path, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleetobs: %s%s: status %d", target, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// rebuildLocked reconstructs the merged registry and snapshot from the
// instance states. The registry is rebuilt from scratch every round —
// counters in obs accumulate on Load, so reusing one across rounds would
// double-count; a fresh registry per round costs a few allocations per
// series and keeps the semantics trivially right.
func (f *Federator) rebuildLocked(now time.Time) {
	reg := obs.NewRegistry()
	snap := Snapshot{
		Time:  now,
		Fleet: make(map[string]float64),
		Rates: make(map[string]map[string]float64),
	}
	for _, target := range f.targets {
		st := f.instances[target]
		is := InstanceSnapshot{
			Target:     target,
			Service:    st.id.Service,
			Shard:      st.id.Shard,
			Shards:     st.id.Shards,
			PID:        st.id.PID,
			StartUnix:  st.id.StartUnix,
			Up:         st.up,
			Error:      st.lastErr,
			LastScrape: st.lastScrape,
		}
		if st.up {
			is.Counters = make(map[string]float64)
			for _, m := range st.dump.Metrics {
				// Instance-labeled copy of every series.
				lm := m
				lm.Name = withInstanceLabel(m.Name, target)
				if err := reg.Load(obs.Dump{Metrics: []obs.DumpedMetric{lm}}); err != nil {
					obs.DefaultLogger().Warn("fleetobs: skipping series", "target", target, "series", m.Name, "err", err.Error())
					continue
				}
				// Fleet sum: Load adds counters and histograms, so loading
				// every instance's series unchanged into the same registry
				// *is* the fleet sum. Gauges are deliberately not fleet-
				// merged — last-instance-wins would be arbitrary; their
				// instance-labeled copies carry the per-instance values.
				if m.Kind == "counter" || m.Kind == "histogram" {
					if err := reg.Load(obs.Dump{Metrics: []obs.DumpedMetric{m}}); err != nil {
						obs.DefaultLogger().Warn("fleetobs: skipping fleet sum", "target", target, "series", m.Name, "err", err.Error())
					}
				}
				if m.Kind == "counter" {
					is.Counters[m.Name] = m.Value
					snap.Fleet[m.Name] += m.Value
				}
			}
			if rates := counterRates(st); len(rates) > 0 {
				snap.Rates[target] = rates
			}
		}
		snap.Instances = append(snap.Instances, is)
	}
	f.merged = reg
	f.snap = snap
}

// counterRates computes per-second counter increases over the instance's
// last scrape window.
func counterRates(st *instanceState) map[string]float64 {
	if st.scrapes < 2 {
		return nil
	}
	secs := st.lastScrape.Sub(st.prevScrape).Seconds()
	if secs <= 0 {
		return nil
	}
	prev := make(map[string]float64)
	for _, m := range st.prevDump.Metrics {
		if m.Kind == "counter" {
			prev[m.Name] = m.Value
		}
	}
	rates := make(map[string]float64)
	for _, m := range st.dump.Metrics {
		if m.Kind != "counter" {
			continue
		}
		if d := m.Value - prev[m.Name]; d > 0 {
			rates[m.Name] = d / secs
		}
	}
	return rates
}

// Merged returns the current fleet registry (instance-labeled series plus
// fleet-summed counters and histograms). Serve it at /metrics.
func (f *Federator) Merged() *obs.Registry {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.merged
}

// Snap returns the latest fleet snapshot.
func (f *Federator) Snap() Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap
}

// InstanceDump returns the latest raw dump scraped from target, exactly as
// the instance served it — the federation round-trip invariant (a federated
// instance dump equals the instance's own obs.Dump) is tested against this.
func (f *Federator) InstanceDump(target string) (obs.Dump, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.instances[target]
	if !ok || !st.up {
		return obs.Dump{}, false
	}
	return st.dump, true
}

// Windows returns one Window per instance that has a complete scrape pair,
// with counter and histogram-bucket increases summed by base metric name.
// This is the watchdog's input.
func (f *Federator) Windows() []Window {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Window
	for _, target := range f.targets {
		st := f.instances[target]
		if !st.up || st.scrapes < 2 {
			continue
		}
		w := Window{
			Target:   target,
			Identity: st.id,
			Seconds:  st.lastScrape.Sub(st.prevScrape).Seconds(),
			Counters: make(map[string]float64),
			Hists:    make(map[string]HistWindow),
		}
		prevC := make(map[string]float64)
		prevH := make(map[string]obs.DumpedMetric)
		for _, m := range st.prevDump.Metrics {
			switch m.Kind {
			case "counter":
				prevC[m.Name] = m.Value
			case "histogram":
				prevH[m.Name] = m
			}
		}
		for _, m := range st.dump.Metrics {
			base := baseName(m.Name)
			switch m.Kind {
			case "counter":
				if d := m.Value - prevC[m.Name]; d > 0 {
					w.Counters[base] += d
				}
			case "histogram":
				hw := w.Hists[base]
				if hw.Bounds == nil {
					hw.Bounds = m.Bounds
					hw.Buckets = make([]uint64, len(m.Buckets))
				}
				if len(hw.Buckets) != len(m.Buckets) || !boundsEqual(hw.Bounds, m.Bounds) {
					continue // mismatched shapes under one base name; skip
				}
				p, had := prevH[m.Name]
				for i, c := range m.Buckets {
					var pc uint64
					if had && i < len(p.Buckets) {
						pc = p.Buckets[i]
					}
					if c > pc {
						hw.Buckets[i] += c - pc
						hw.Count += c - pc
					}
				}
				w.Hists[base] = hw
			}
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}

// withInstanceLabel injects instance="target" as the first label of a
// series name, preserving existing labels.
func withInstanceLabel(name, target string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + `{instance="` + target + `",` + name[i+1:]
	}
	return name + `{instance="` + target + `"}`
}

// baseName strips the label block from a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
