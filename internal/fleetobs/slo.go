package fleetobs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/obs"
)

// The SLO layer: a declarative spec of fleet health rules evaluated once per
// scrape window, with burn-rate accounting — a rule must breach for
// BurnWindows consecutive windows before it fires, so a single slow scrape
// does not page anyone. When a rule fires, the watchdog emits a structured
// alert log, writes the alert as JSON, and captures a CPU profile from the
// offending instance through the atomic writer, so the evidence of *why*
// the SLO burned is on disk before the incident fades.

// Rule is one SLO: either a latency quantile bound over a histogram
// ("p99") or a bound on a ratio of counter increases ("ratio"). Metric
// names are base names — labels are summed away before evaluation.
type Rule struct {
	// Name identifies the rule in alerts and logs.
	Name string `json:"name"`
	// Kind is "p99" or "ratio".
	Kind string `json:"kind"`
	// Metric is the histogram base name a p99 rule bounds.
	Metric string `json:"metric,omitempty"`
	// Num and Den are the counter base names of a ratio rule's numerator
	// and denominator; each side sums its listed metrics' window increases.
	Num []string `json:"num,omitempty"`
	Den []string `json:"den,omitempty"`
	// Max breaches when the value exceeds it (error rate, shed rate, p99
	// seconds). Min breaches when the value falls below it (cache hit
	// rate). Zero means that bound is unset; at least one must be set.
	Max float64 `json:"max,omitempty"`
	Min float64 `json:"min,omitempty"`
	// MinEvents is the denominator (or histogram count) a window must reach
	// before the rule is evaluated — below it the window is ignored, so an
	// idle instance neither breaches nor heals. Default 1.
	MinEvents float64 `json:"min_events,omitempty"`
	// BurnWindows is how many consecutive breaching windows fire the alert.
	// Default 2.
	BurnWindows int `json:"burn_windows,omitempty"`
	// Services restricts the rule to instances whose /healthz service name
	// is listed; empty applies everywhere the metrics exist.
	Services []string `json:"services,omitempty"`
}

// Spec is a watchdog configuration: the JSON document -slo points at.
type Spec struct {
	Rules []Rule `json:"rules"`
}

// ParseSpec decodes and validates a spec.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fleetobs: parsing SLO spec: %w", err)
	}
	if len(s.Rules) == 0 {
		return Spec{}, fmt.Errorf("fleetobs: SLO spec has no rules")
	}
	for i := range s.Rules {
		r := &s.Rules[i]
		if r.Name == "" {
			return Spec{}, fmt.Errorf("fleetobs: SLO rule %d has no name", i)
		}
		switch r.Kind {
		case "p99":
			if r.Metric == "" {
				return Spec{}, fmt.Errorf("fleetobs: p99 rule %q needs a metric", r.Name)
			}
		case "ratio":
			if len(r.Num) == 0 || len(r.Den) == 0 {
				return Spec{}, fmt.Errorf("fleetobs: ratio rule %q needs num and den", r.Name)
			}
		default:
			return Spec{}, fmt.Errorf("fleetobs: rule %q has unknown kind %q", r.Name, r.Kind)
		}
		if r.Max == 0 && r.Min == 0 {
			return Spec{}, fmt.Errorf("fleetobs: rule %q sets neither max nor min", r.Name)
		}
		if r.MinEvents <= 0 {
			r.MinEvents = 1
		}
		if r.BurnWindows <= 0 {
			r.BurnWindows = 2
		}
	}
	return s, nil
}

// Alert is one fired SLO breach, written to the alert directory as
// alert-<seq>.json and served at /alerts.json.
type Alert struct {
	Rule     string    `json:"rule"`
	Instance string    `json:"instance"`
	Service  string    `json:"service,omitempty"`
	Value    float64   `json:"value"`
	Max      float64   `json:"max,omitempty"`
	Min      float64   `json:"min,omitempty"`
	Burn     int       `json:"burn_windows"`
	Time     time.Time `json:"time"`
	// Profile is the path of the pprof CPU profile captured from the
	// offending instance, empty when capture failed.
	Profile string `json:"profile,omitempty"`
}

// Watchdog evaluates a Spec against a Federator's scrape windows.
type Watchdog struct {
	spec Spec
	fed  *Federator
	// AlertDir receives alert-<seq>.json and profile-<seq>.pprof files;
	// empty disables writing (alerts still accumulate in memory).
	AlertDir string
	// ProfileSeconds is the CPU profile length captured on breach; 0
	// disables capture.
	ProfileSeconds int
	// Client fetches the profile; nil uses a client sized to the profile
	// length.
	Client *http.Client

	burning map[string]int // rule|target → consecutive breaching windows
	seq     int

	mu     sync.Mutex // guards alerts: Evaluate appends, /alerts.json reads
	alerts []Alert
}

// NewWatchdog builds a watchdog over fed.
func NewWatchdog(spec Spec, fed *Federator) *Watchdog {
	return &Watchdog{spec: spec, fed: fed, burning: make(map[string]int)}
}

// Alerts returns every alert fired so far, oldest first. Safe to call
// concurrently with Evaluate.
func (w *Watchdog) Alerts() []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Alert(nil), w.alerts...)
}

// Evaluate scores every rule against every instance's latest scrape window
// and returns the alerts fired by this evaluation (already logged, written,
// and profiled). Call it once per scrape round, after ScrapeOnce; it is not
// safe for concurrent use with itself.
func (w *Watchdog) Evaluate(now time.Time) []Alert {
	var fired []Alert
	windows := w.fed.Windows()
	for _, rule := range w.spec.Rules {
		for _, win := range windows {
			if !rule.applies(win.Identity.Service) {
				continue
			}
			value, ok := rule.value(win)
			if !ok {
				continue // not enough events: neither breach nor heal
			}
			key := rule.Name + "|" + win.Target
			if rule.breached(value) {
				w.burning[key]++
				// Fire exactly once per sustained burn: at the threshold,
				// not on every window past it. Recovery resets, so a new
				// burn fires again.
				if w.burning[key] == rule.BurnWindows {
					fired = append(fired, w.fire(rule, win, value, now))
				}
			} else {
				w.burning[key] = 0
			}
		}
	}
	return fired
}

func (r *Rule) applies(service string) bool {
	if len(r.Services) == 0 {
		return true
	}
	for _, s := range r.Services {
		if s == service {
			return true
		}
	}
	return false
}

func (r *Rule) breached(v float64) bool {
	if r.Max != 0 && v > r.Max {
		return true
	}
	if r.Min != 0 && v < r.Min {
		return true
	}
	return false
}

// value computes the rule's value over one window; ok is false when the
// window has too little data to judge.
func (r *Rule) value(win Window) (float64, bool) {
	switch r.Kind {
	case "p99":
		h, exists := win.Hists[r.Metric]
		if !exists || float64(h.Count) < r.MinEvents {
			return 0, false
		}
		return bucketQuantile(h, 0.99), true
	case "ratio":
		var num, den float64
		for _, m := range r.Num {
			num += win.Counters[m]
		}
		for _, m := range r.Den {
			den += win.Counters[m]
		}
		if den < r.MinEvents {
			return 0, false
		}
		return num / den, true
	}
	return 0, false
}

// bucketQuantile returns the smallest bucket upper bound covering quantile
// q of the window's observations — the standard conservative estimate from
// cumulative bucket counts. Observations past the last bound report +Inf.
func bucketQuantile(h HistWindow, q float64) float64 {
	need := uint64(math.Ceil(q * float64(h.Count)))
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= need {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// fire records the breach: structured alert log, alert JSON on disk, and a
// CPU profile captured from the offending instance.
func (w *Watchdog) fire(rule Rule, win Window, value float64, now time.Time) Alert {
	w.seq++
	a := Alert{
		Rule:     rule.Name,
		Instance: win.Target,
		Service:  win.Identity.Service,
		Value:    value,
		Max:      rule.Max,
		Min:      rule.Min,
		Burn:     rule.BurnWindows,
		Time:     now,
	}
	if w.AlertDir != "" && w.ProfileSeconds > 0 {
		path := filepath.Join(w.AlertDir, fmt.Sprintf("profile-%d.pprof", w.seq))
		if err := w.captureProfile(win.Target, path); err != nil {
			obs.DefaultLogger().Warn("slo: profile capture failed",
				"rule", rule.Name, "instance", win.Target, "err", err.Error())
		} else {
			a.Profile = path
		}
	}
	obs.DefaultLogger().Error("SLO breach",
		"rule", rule.Name, "instance", win.Target, "service", win.Identity.Service,
		"value", fmt.Sprintf("%g", value), "max", fmt.Sprintf("%g", rule.Max),
		"min", fmt.Sprintf("%g", rule.Min), "burn_windows", fmt.Sprint(rule.BurnWindows),
		"profile", a.Profile)
	if w.AlertDir != "" {
		path := filepath.Join(w.AlertDir, fmt.Sprintf("alert-%d.json", w.seq))
		err := durable.WriteFileAtomic(path, 0o644, func(out io.Writer) error {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(a)
		})
		if err != nil {
			obs.DefaultLogger().Warn("slo: writing alert", "path", path, "err", err.Error())
		}
	}
	w.mu.Lock()
	w.alerts = append(w.alerts, a)
	w.mu.Unlock()
	return a
}

// captureProfile pulls /debug/pprof/profile from the instance and lands it
// atomically — the file either exists complete or not at all, never torn.
func (w *Watchdog) captureProfile(target, path string) error {
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: time.Duration(w.ProfileSeconds+10) * time.Second}
	}
	url := fmt.Sprintf("http://%s/debug/pprof/profile?seconds=%d", target, w.ProfileSeconds)
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("fleetobs: profile from %s: status %d", target, resp.StatusCode)
	}
	return durable.WriteFileAtomic(path, 0o644, func(out io.Writer) error {
		_, err := io.Copy(out, resp.Body)
		return err
	})
}
