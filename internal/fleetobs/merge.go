// Package fleetobs turns the per-process observability of internal/obs into
// fleet-level observability: it merges per-process Chrome trace files into
// one cross-process trace (merge.go), scrape-federates every instance's
// /metrics.json dump into an instance-labeled fleet registry with summed
// fleet counters and per-instance rate deltas (federate.go), and evaluates
// declarative SLO rules over scrape windows with burn-rate accounting,
// capturing a pprof profile from the offending instance on breach (slo.go).
// cmd/elevobs is the thin daemon over this package.
package fleetobs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// event mirrors obs's chrome trace_event entry; Args stay a string map so
// span_id/parent_id/trace_id survive the round trip bit for bit.
type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is one per-process trace as written by obs.WriteChromeTrace.
type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	EpochMicros     int64   `json:"epochMicros"`
	ProcessName     string  `json:"processName"`
}

// mergedTrace is the fleet-wide output: every process on its own pid lane,
// timestamps rebased onto the earliest process's epoch.
type mergedTrace struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	EpochMicros     int64   `json:"epochMicros,omitempty"`
}

// MergeSummary reports what the merge found — the fleet smoke asserts on
// these numbers.
type MergeSummary struct {
	// Files is how many trace files were read.
	Files int `json:"files"`
	// Processes counts files that contributed at least one span.
	Processes int `json:"processes"`
	// Spans is the total span count across all lanes.
	Spans int `json:"spans"`
	// CrossLinks counts spans whose parent lives in a different process —
	// the client→server links trace propagation exists to create.
	CrossLinks int `json:"cross_links"`
	// Traces is the number of distinct trace IDs seen.
	Traces int `json:"traces"`
	// CrossProcessTraces is how many of those span more than one process.
	CrossProcessTraces int `json:"cross_process_traces"`
}

// MergeTraces joins per-process Chrome trace files into one fleet trace on
// w: each input file becomes its own pid lane (named by the file's
// processName, falling back to the file basename), timestamps are rebased
// from per-file relative microseconds onto the earliest file's epoch, and
// spans whose parent_id resolves into a different lane are annotated
// cross_process="true". Files written before epochs existed merge at offset
// zero.
func MergeTraces(w io.Writer, paths []string) (MergeSummary, error) {
	var sum MergeSummary
	files := make([]traceFile, 0, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return sum, fmt.Errorf("fleetobs: reading trace: %w", err)
		}
		var tf traceFile
		if err := json.Unmarshal(raw, &tf); err != nil {
			return sum, fmt.Errorf("fleetobs: parsing trace %s: %w", p, err)
		}
		if tf.ProcessName == "" {
			tf.ProcessName = filepath.Base(p)
		}
		files = append(files, tf)
	}
	sum.Files = len(files)

	// Shared timeline: rebase every file onto the earliest known epoch.
	var minEpoch int64
	for _, tf := range files {
		if tf.EpochMicros > 0 && (minEpoch == 0 || tf.EpochMicros < minEpoch) {
			minEpoch = tf.EpochMicros
		}
	}

	// First pass: which lane does each span live on?
	spanLane := make(map[string]int)
	for i, tf := range files {
		for _, ev := range tf.TraceEvents {
			if id := ev.Args["span_id"]; id != "" {
				spanLane[id] = i
			}
		}
	}

	merged := mergedTrace{DisplayTimeUnit: "ms", EpochMicros: minEpoch}
	traceLanes := make(map[string]map[int]bool)
	for i, tf := range files {
		pid := i + 1
		if len(tf.TraceEvents) > 0 {
			sum.Processes++
		}
		merged.TraceEvents = append(merged.TraceEvents, event{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": tf.ProcessName},
		})
		var offset float64
		if tf.EpochMicros > 0 && minEpoch > 0 {
			offset = float64(tf.EpochMicros - minEpoch)
		}
		for _, ev := range tf.TraceEvents {
			ev.Pid = pid
			ev.Tid = 1
			ev.Ts += offset
			sum.Spans++
			if tid := ev.Args["trace_id"]; tid != "" {
				if traceLanes[tid] == nil {
					traceLanes[tid] = make(map[int]bool)
				}
				traceLanes[tid][i] = true
			}
			if parent := ev.Args["parent_id"]; parent != "" {
				if lane, ok := spanLane[parent]; ok && lane != i {
					sum.CrossLinks++
					// Copy-on-annotate: Args may be shared with the decoded
					// file slice.
					args := make(map[string]string, len(ev.Args)+1)
					for k, v := range ev.Args {
						args[k] = v
					}
					args["cross_process"] = "true"
					ev.Args = args
				}
			}
			merged.TraceEvents = append(merged.TraceEvents, ev)
		}
	}
	sum.Traces = len(traceLanes)
	for _, lanes := range traceLanes {
		if len(lanes) > 1 {
			sum.CrossProcessTraces++
		}
	}

	// Stable output: metadata first per lane is already guaranteed by
	// construction; sort span events by rebased start so the merged file is
	// deterministic given the same inputs.
	sort.SliceStable(merged.TraceEvents, func(a, b int) bool {
		ea, eb := merged.TraceEvents[a], merged.TraceEvents[b]
		if (ea.Ph == "M") != (eb.Ph == "M") {
			return ea.Ph == "M"
		}
		return ea.Ts < eb.Ts
	})

	enc := json.NewEncoder(w)
	if err := enc.Encode(merged); err != nil {
		return sum, fmt.Errorf("fleetobs: writing merged trace: %w", err)
	}
	return sum, nil
}
