package segments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/terrain"
)

// Kill-and-resume fault injection: these tests abort seeded sweeps at
// random work-unit boundaries, resume them from the checkpoint journal, and
// pin the two durability contracts — byte-identical final output and no
// re-issued HTTP calls for completed units.

// requestLog records every request URI a test server answers.
type requestLog struct {
	mu   sync.Mutex
	uris []string
}

func (l *requestLog) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		l.mu.Lock()
		l.uris = append(l.uris, r.URL.RequestURI())
		l.mu.Unlock()
		h.ServeHTTP(w, r)
	})
}

func (l *requestLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.uris...)
}

var errSimulatedCrash = errors.New("simulated crash at unit boundary")

// dieAfter is an httpx.Doer that crashes the run after budget requests:
// the failing request errors before reaching the wire, modeling a process
// death at a work-unit boundary.
type dieAfter struct {
	base   httpx.Doer
	mu     sync.Mutex
	budget int
}

func (d *dieAfter) Do(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	if d.budget <= 0 {
		d.mu.Unlock()
		return nil, errSimulatedCrash
	}
	d.budget--
	d.mu.Unlock()
	return d.base.Do(req)
}

// panicOn panics on the nth request, exercising worker panic recovery.
type panicOn struct {
	base httpx.Doer
	mu   sync.Mutex
	n    int
}

func (p *panicOn) Do(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	p.n--
	trip := p.n == 0
	p.mu.Unlock()
	if trip {
		panic("injected worker panic")
	}
	return p.base.Do(req)
}

// resumeStack stands up counting servers over the WDC terrain plus a miner
// whose clients run through the given Doer wrappers.
type resumeStack struct {
	miner   *Miner
	segLog  *requestLog
	elevLog *requestLog
	elevURL string
}

func newResumeStack(tb testing.TB, store *Store, wrap func(httpx.Doer) httpx.Doer) *resumeStack {
	tb.Helper()
	world := terrain.World()
	wdc, err := terrain.CityByName(world, "WDC")
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := wdc.Terrain()
	if err != nil {
		tb.Fatal(err)
	}

	segLog, elevLog := &requestLog{}, &requestLog{}
	segSrv := httptest.NewServer(segLog.wrap(NewServer(store, WithLogf(tb.Logf)).Handler()))
	tb.Cleanup(segSrv.Close)
	elevSrv := httptest.NewServer(elevLog.wrap(elevsvc.NewServer(tr, elevsvc.WithLogf(tb.Logf)).Handler()))
	tb.Cleanup(elevSrv.Close)

	var segDoer, elevDoer httpx.Doer = segSrv.Client(), elevSrv.Client()
	if wrap != nil {
		segDoer, elevDoer = wrap(segDoer), wrap(elevDoer)
	}
	m := NewMiner(NewClient(segSrv.URL, segDoer), elevsvc.NewClient(elevSrv.URL, elevDoer))
	m.Samples = 20
	m.GridRows, m.GridCols = 4, 4
	return &resumeStack{miner: m, segLog: segLog, elevLog: elevLog, elevURL: elevSrv.URL}
}

func resumeClasses() map[string]geo.BBox {
	b := cityBounds()
	return map[string]geo.BBox{
		"alpha": geo.NewBBox(geo.LatLng{Lat: 38.88, Lng: b.SW.Lng}, b.NE),
		"delta": geo.NewBBox(b.SW, geo.LatLng{Lat: 38.92, Lng: b.NE.Lng}),
	}
}

// mustJSON renders mined output for byte-level comparison.
func mustJSON(tb testing.TB, v any) []byte {
	tb.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		tb.Fatal(err)
	}
	return blob
}

// TestMineResumeByteIdenticalNoReissuedCalls aborts a seeded sweep at a
// range of random unit boundaries, resumes each from its journal, and
// asserts the resumed output is byte-identical to an uninterrupted run with
// zero overlap between pre-crash and post-resume HTTP requests.
func TestMineResumeByteIdenticalNoReissuedCalls(t *testing.T) {
	store := populatedStore(t, 7, 50)
	classes := resumeClasses()

	// Uninterrupted baseline (no journal).
	baselineStack := newResumeStack(t, store, nil)
	baseline, sweepErr := baselineStack.miner.MineClassesPartial(context.Background(), classes)
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline mined nothing")
	}
	baselineCalls := len(baselineStack.segLog.snapshot()) + len(baselineStack.elevLog.snapshot())

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		budget := 1 + rng.Intn(baselineCalls-1)
		t.Run(fmt.Sprintf("crash_after_%d_calls", budget), func(t *testing.T) {
			dir := t.TempDir()
			wal := filepath.Join(dir, "sweep.wal")

			// Phase 1: run serially, crash after `budget` requests.
			j, err := durable.OpenJournal(wal)
			if err != nil {
				t.Fatal(err)
			}
			// Each service gets its own budget, so small budgets crash in
			// the explore phase and larger ones in the elevation phase.
			crashed := newResumeStack(t, store, func(d httpx.Doer) httpx.Doer {
				return &dieAfter{base: d, budget: budget}
			})
			crashed.miner.Workers = 1 // unit-boundary crash: nothing in flight
			crashed.miner.Checkpoint = j
			_, sweepErr := crashed.miner.MineClassesPartial(context.Background(), classes)
			if sweepErr == nil {
				t.Skip("budget outlasted the sweep; nothing to resume")
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			preCrash := append(crashed.segLog.snapshot(), crashed.elevLog.snapshot()...)

			// Phase 2: resume with a fresh process (new stack, same journal).
			j2, err := durable.OpenJournal(wal)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			resumed := newResumeStack(t, store, nil)
			resumed.miner.Workers = 4
			resumed.miner.Checkpoint = j2
			out, sweepErr2 := resumed.miner.MineClassesPartial(context.Background(), classes)
			if sweepErr2 != nil {
				t.Fatal(sweepErr2)
			}

			if !reflect.DeepEqual(out, baseline) {
				t.Fatal("resumed output differs from uninterrupted run")
			}
			if got, want := mustJSON(t, out), mustJSON(t, baseline); string(got) != string(want) {
				t.Fatal("resumed output not byte-identical to uninterrupted run")
			}

			// No completed unit may be re-fetched: the pre-crash and
			// post-resume request sets must be disjoint.
			seen := make(map[string]bool, len(preCrash))
			for _, uri := range preCrash {
				seen[uri] = true
			}
			postResume := append(resumed.segLog.snapshot(), resumed.elevLog.snapshot()...)
			for _, uri := range postResume {
				if seen[uri] {
					t.Fatalf("resume re-issued completed unit %s", uri)
				}
			}
		})
	}
}

// TestMineResumeAfterTornJournalTail simulates a SIGKILL inside an fsync
// batch: the journal loses its tail bytes, the resume re-runs only the lost
// units, and the final output is still byte-identical.
func TestMineResumeAfterTornJournalTail(t *testing.T) {
	store := populatedStore(t, 9, 40)
	classes := resumeClasses()

	baselineStack := newResumeStack(t, store, nil)
	baseline, sweepErr := baselineStack.miner.MineClassesPartial(context.Background(), classes)
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}

	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	j, err := durable.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	crashed := newResumeStack(t, store, func(d httpx.Doer) httpx.Doer {
		return &dieAfter{base: d, budget: 30}
	})
	crashed.miner.Workers = 1
	crashed.miner.Checkpoint = j
	if _, sweepErr := crashed.miner.MineClassesPartial(context.Background(), classes); sweepErr == nil {
		t.Fatal("crash budget outlasted the sweep")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal: chop off the last 17 bytes (mid-record).
	blob, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 32 {
		t.Fatalf("journal implausibly small: %d bytes", len(blob))
	}
	if err := os.WriteFile(wal, blob[:len(blob)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := durable.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := newResumeStack(t, store, nil)
	resumed.miner.Workers = 4
	resumed.miner.Checkpoint = j2
	out, sweepErr2 := resumed.miner.MineClassesPartial(context.Background(), classes)
	if sweepErr2 != nil {
		t.Fatal(sweepErr2)
	}
	if got, want := mustJSON(t, out), mustJSON(t, baseline); string(got) != string(want) {
		t.Fatal("post-tear resume not byte-identical to uninterrupted run")
	}
}

// TestMinePanicQuarantinesClass injects a worker panic into one class's
// sweep and asserts the panic is recovered, only that class fails, and the
// failure carries the *durable.PanicError through *SweepError.
func TestMinePanicQuarantinesClass(t *testing.T) {
	store := populatedStore(t, 11, 40)
	classes := resumeClasses()

	stack := newResumeStack(t, store, nil)
	stack.miner.Workers = 2
	// Panic on the 3rd elevation request: alpha (first label) is mid-phase-2.
	stack.miner.elevation = elevsvc.NewClient(
		stack.elevURL, &panicOn{base: http.DefaultClient, n: 3})

	out, sweepErr := stack.miner.MineClassesPartial(context.Background(), classes)
	if sweepErr == nil {
		t.Fatal("panic did not surface in SweepError")
	}
	if len(sweepErr.PerClass) != 1 || sweepErr.PerClass[0].Label != "alpha" {
		t.Fatalf("quarantine leaked beyond the panicking class: %v", sweepErr)
	}
	var pe *durable.PanicError
	if !errors.As(sweepErr.PerClass[0].Err, &pe) {
		t.Fatalf("class error = %v, want *durable.PanicError", sweepErr.PerClass[0].Err)
	}
	if len(out) == 0 {
		t.Fatal("sibling class delta mined nothing")
	}
	for _, ms := range out {
		if ms.Label != "delta" {
			t.Fatalf("unexpected label %q in partial output", ms.Label)
		}
	}
}

// TestMineDrainStopsDispatchAndResumes closes the miner's drain channel
// mid-sweep, asserts the sweep reports a clean interruption, then resumes
// to a byte-identical result.
func TestMineDrainStopsDispatchAndResumes(t *testing.T) {
	store := populatedStore(t, 13, 40)
	classes := resumeClasses()

	baselineStack := newResumeStack(t, store, nil)
	baseline, sweepErr := baselineStack.miner.MineClassesPartial(context.Background(), classes)
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}

	dir := t.TempDir()
	wal := filepath.Join(dir, "sweep.wal")
	j, err := durable.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	drain := make(chan struct{})
	var once sync.Once
	interrupted := newResumeStack(t, store, func(d httpx.Doer) httpx.Doer {
		return doerFunc(func(req *http.Request) (*http.Response, error) {
			resp, err := d.Do(req)
			once.Do(func() { close(drain) }) // SIGINT lands after the first request
			return resp, err
		})
	})
	interrupted.miner.Workers = 2
	interrupted.miner.Checkpoint = j
	interrupted.miner.Drain = drain
	_, sweepErr = interrupted.miner.MineClassesPartial(context.Background(), classes)
	if sweepErr == nil {
		t.Fatal("drained sweep reported full success")
	}
	if !sweepErr.Interrupted() {
		t.Fatalf("drain misreported as real failure: %v", sweepErr)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := durable.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := newResumeStack(t, store, nil)
	resumed.miner.Workers = 4
	resumed.miner.Checkpoint = j2
	out, sweepErr2 := resumed.miner.MineClassesPartial(context.Background(), classes)
	if sweepErr2 != nil {
		t.Fatal(sweepErr2)
	}
	if got, want := mustJSON(t, out), mustJSON(t, baseline); string(got) != string(want) {
		t.Fatal("post-drain resume not byte-identical to uninterrupted run")
	}
}

// doerFunc adapts a function to httpx.Doer.
type doerFunc func(*http.Request) (*http.Response, error)

func (f doerFunc) Do(req *http.Request) (*http.Response, error) { return f(req) }
