package segments

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/terrain"
)

// pooledStack stands up a sharded serving tier in miniature: four replica
// instances of each service (all full replicas over the same store and
// terrain, exactly like the production shards), with pooled clients routing
// by consistent hash through a shared fault-injecting transport.
type pooledStack struct {
	miner     *Miner
	ft        *httpx.FaultTripper
	segPool   *httpx.Pool
	elevPool  *httpx.Pool
	segHosts  []string
	elevHosts []string
}

func newPooledStack(tb testing.TB, store *Store, replicas int) *pooledStack {
	tb.Helper()
	world := terrain.World()
	wdc, err := terrain.CityByName(world, "WDC")
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := wdc.Terrain()
	if err != nil {
		tb.Fatal(err)
	}

	ft := httpx.NewFaultTripper(nil)
	hc := &http.Client{Transport: ft}

	segURLs := make([]string, replicas)
	elevURLs := make([]string, replicas)
	segHosts := make([]string, replicas)
	elevHosts := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		segSrv := httptest.NewServer(NewServer(store, WithLogf(tb.Logf), WithShard(i, replicas)).Handler())
		tb.Cleanup(segSrv.Close)
		elevSrv := httptest.NewServer(elevsvc.NewServer(tr, elevsvc.WithLogf(tb.Logf), elevsvc.WithShard(i, replicas)).Handler())
		tb.Cleanup(elevSrv.Close)
		segURLs[i], elevURLs[i] = segSrv.URL, elevSrv.URL
		segHosts[i] = mustHost(tb, segSrv.URL)
		elevHosts[i] = mustHost(tb, elevSrv.URL)
	}

	// MaxAttempts 8 over 4 endpoints: the sweep can burn attempts on a dark
	// shard every round and still land each request on a live replica.
	policy := httpx.Policy{
		MaxAttempts: 8,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
	opts := []httpx.PoolOption{
		httpx.WithPoolPolicy(policy),
		httpx.WithPoolTransport(hc),
		httpx.WithPoolSleep(instantSleep),
		httpx.WithPoolJitterSeed(1),
		// A low threshold and short cooldown so the dark shard's breaker
		// opens within one sweep and recovers within one test.
		httpx.WithPoolBreaker(3, 50*time.Millisecond),
		// Down marks expire almost immediately: the dark shard keeps getting
		// optimistic retries, so its consecutive-failure count climbs until
		// the breaker takes over the back-pressure.
		httpx.WithPoolDownTTL(time.Millisecond),
		// No background probes: the test drives every request itself.
		httpx.WithPoolHealthInterval(0),
	}
	segPool, err := httpx.NewPool(segURLs, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(segPool.Close)
	elevPool, err := httpx.NewPool(elevURLs, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(elevPool.Close)

	return &pooledStack{
		miner:     NewMiner(NewPoolClient(segPool), elevsvc.NewPoolClient(elevPool)),
		ft:        ft,
		segPool:   segPool,
		elevPool:  elevPool,
		segHosts:  segHosts,
		elevHosts: elevHosts,
	}
}

func mustHost(tb testing.TB, rawURL string) string {
	tb.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		tb.Fatal(err)
	}
	return u.Host
}

// TestMinePooledMatchesSingleEndpoint: with four healthy replicas behind
// consistent-hash pools, a sweep's output is byte-identical to the
// single-endpoint serial baseline, and the per-endpoint request counts are
// balanced within the ISSUE's 2x bound.
func TestMinePooledMatchesSingleEndpoint(t *testing.T) {
	store := populatedStore(t, 11, 60)

	baseline := newFaultableStack(t, store, nil, nil)
	baseline.miner.Samples = 20
	baseline.miner.GridRows, baseline.miner.GridCols = 6, 6
	baseline.miner.Workers = 1
	want, err := baseline.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline mined nothing")
	}

	pooled := newPooledStack(t, store, 4)
	pooled.miner.Samples = 20
	pooled.miner.GridRows, pooled.miner.GridCols = 6, 6
	got, err := pooled.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("pooled sweep differs from single-endpoint serial baseline")
	}

	for _, pool := range []*httpx.Pool{pooled.segPool, pooled.elevPool} {
		stats := pool.Stats()
		lo, hi := stats[0].Requests, stats[0].Requests
		for _, s := range stats[1:] {
			if s.Requests < lo {
				lo = s.Requests
			}
			if s.Requests > hi {
				hi = s.Requests
			}
		}
		if lo == 0 {
			t.Fatalf("an endpoint served zero requests: %+v", stats)
		}
		if hi > 2*lo {
			t.Errorf("per-endpoint balance worse than 2x: min %d, max %d (%+v)", lo, hi, stats)
		}
	}
}

// TestMinePooledSurvivesDarkShard is the pool's acceptance gate, the sharded
// analogue of TestMineClassesSurvivesSeededFaults: one of four replicas of
// each service goes dark mid-sweep (hard transport errors after a few
// healthy responses). The sweep must complete with zero lost cells — output
// byte-identical to the single-endpoint baseline — the dark shards'
// breakers must open under the sustained failures, and once the shards heal
// the breakers must re-close.
func TestMinePooledSurvivesDarkShard(t *testing.T) {
	store := populatedStore(t, 11, 60)

	baseline := newFaultableStack(t, store, nil, nil)
	baseline.miner.Samples = 20
	baseline.miner.GridRows, baseline.miner.GridCols = 6, 6
	baseline.miner.Workers = 1
	want, err := baseline.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline mined nothing")
	}

	stack := newPooledStack(t, store, 4)
	stack.miner.Samples = 20
	stack.miner.GridRows, stack.miner.GridCols = 6, 6

	// Shard 2 of the segment tier and shard 1 of the elevation tier answer
	// their first two requests, then drop off the network until healed —
	// the SIGKILL-mid-sweep scenario at the transport seam.
	deadSeg, deadElev := stack.segHosts[2], stack.elevHosts[1]
	var healed atomic.Bool
	darkAfter := func(host string, warmup int64) func(*http.Request) bool {
		var hits atomic.Int64
		return func(r *http.Request) bool {
			return !healed.Load() && r.URL.Host == host && hits.Add(1) > warmup
		}
	}
	down := httpx.Fault{Err: errors.New("connect: connection refused (injected)")}
	schedule := make([]httpx.Fault, 10000)
	for i := range schedule {
		schedule[i] = down
	}
	stack.ft.Stub(darkAfter(deadSeg, 2), schedule...)
	stack.ft.Stub(darkAfter(deadElev, 2), schedule...)

	got, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatalf("sweep with a dark shard per service failed: %v", err)
	}
	if stack.ft.Injected() == 0 {
		t.Fatal("dark-shard faults never fired")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("sweep with a dark shard lost or altered cells vs the single-endpoint baseline")
	}
	if n := stack.segPool.Failovers() + stack.elevPool.Failovers(); n == 0 {
		t.Fatal("no failovers recorded despite dark shards")
	}

	// Every attempt the pool spent on a dark shard was recorded as a failure.
	if s := stack.segPool.Stats()[2]; s.Failures == 0 {
		t.Fatalf("dark segment shard recorded no failures: %+v", s)
	}
	if s := stack.elevPool.Stats()[1]; s.Failures == 0 {
		t.Fatalf("dark elevation shard recorded no failures: %+v", s)
	}

	// Drive each dark shard's breaker open while the schedule still matches.
	// How many sweep requests the ring routed to the corpse before the sweep
	// finished varies with interleaving, so the trip itself is driven here
	// deterministically: keys owned by the dark shard hit it first (the 1ms
	// down mark keeps expiring), fail, and fail over — each pass adds one
	// consecutive failure until the threshold-3 breaker takes over.
	tripOpen := func(pool *httpx.Pool, deadIdx int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for i := 0; pool.Stats()[deadIdx].Breaker != "open"; i++ {
			if time.Now().After(deadline) {
				t.Fatalf("breaker for dark shard %d still %q after sustained failures",
					deadIdx, pool.Stats()[deadIdx].Breaker)
			}
			resp, err := pool.Get(context.Background(), httpx.HashKey("trip-"+strconv.Itoa(i)), "/healthz")
			if err != nil {
				t.Fatalf("trip probe %d: %v", i, err)
			}
			resp.Body.Close()
		}
	}
	tripOpen(stack.segPool, 2)
	tripOpen(stack.elevPool, 1)

	// The shards come back. After the cooldown, keys the ring assigns to the
	// recovered shards admit a half-open probe that now succeeds, and the
	// breakers re-close.
	healed.Store(true)
	time.Sleep(100 * time.Millisecond) // > the 50ms breaker cooldown

	recover := func(pool *httpx.Pool, deadIdx int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for i := 0; pool.Stats()[deadIdx].Breaker != "closed"; i++ {
			if time.Now().After(deadline) {
				t.Fatalf("breaker for recovered shard %d still %q", deadIdx, pool.Stats()[deadIdx].Breaker)
			}
			// Distinct keys walk the ring until one is owned by the
			// recovered shard and carries the probe.
			resp, err := pool.Get(context.Background(), httpx.HashKey("probe-"+strconv.Itoa(i)), "/healthz")
			if err != nil {
				t.Fatalf("recovery probe %d: %v", i, err)
			}
			resp.Body.Close()
		}
	}
	recover(stack.segPool, 2)
	recover(stack.elevPool, 1)

	t.Logf("absorbed %d injected dark-shard faults across %d calls; seg failovers %d, elev failovers %d",
		stack.ft.Injected(), stack.ft.Calls(), stack.segPool.Failovers(), stack.elevPool.Failovers())
}
