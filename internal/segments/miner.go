package segments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"elevprivacy/internal/durable"
	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/obs"
)

// Miner telemetry: class outcomes and mined-sample throughput, on top of the
// per-unit series the durable pool already publishes.
var (
	minerClassesOK     = obs.GetCounter(`elevpriv_miner_classes_total{status="ok"}`)
	minerClassesFailed = obs.GetCounter(`elevpriv_miner_classes_total{status="failed"}`)
	minerSegmentsMined = obs.GetCounter("elevpriv_miner_segments_mined_total")
	minerClassSeconds  = obs.GetHistogram("elevpriv_miner_class_seconds",
		[]float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600})
)

// MinedSegment is one labeled sample produced by the miner: a segment route
// augmented with its elevation profile, tagged with the class label of the
// boundary it was mined from.
type MinedSegment struct {
	// ID is the segment identity at the fitness service.
	ID string
	// Label is the class label of the mining boundary (city or borough).
	Label string
	// Path is the segment route.
	Path geo.Path
	// Elevations is the elevation profile from the elevation service.
	Elevations []float64
}

// Miner executes the paper's Fig. 4 pipeline: divide the class boundary
// into a grid of regions, call ExploreSegments per region (top-10 each),
// deduplicate, and augment every path with an elevation profile.
type Miner struct {
	segments  *Client
	elevation *elevsvc.Client
	// Samples is the per-profile elevation sample count requested from the
	// elevation service.
	Samples int
	// GridRows and GridCols control the boundary decomposition.
	GridRows int
	GridCols int
	// Workers bounds the number of concurrent service calls per sweep
	// phase. 1 reproduces the old serial behavior; the output is identical
	// either way (see MineBoundary's ordering guarantee).
	Workers int
	// Checkpoint, when non-nil, makes sweeps resumable: every completed
	// work unit — one grid-cell explore, one elevation profile, one class —
	// is journaled with its result, and a rerun against the same journal
	// reuses the recorded results instead of re-issuing the service calls.
	// A resumed sweep produces byte-identical output to an uninterrupted
	// one (keys embed the grid and sample configuration, so a journal from
	// a different configuration is never misapplied).
	Checkpoint *durable.Journal
	// UnitTimeout, when positive, is the deadline budget for each work
	// unit (one service call with its retries).
	UnitTimeout time.Duration
	// Drain, when non-nil and closed, stops the dispatch of new work units
	// while in-flight units finish; undispatched units and unattempted
	// classes report durable.ErrInterrupted. Wired to SIGINT/SIGTERM by
	// the CLIs for graceful shutdown.
	Drain <-chan struct{}
}

// DefaultWorkers is the default per-sweep concurrency.
const DefaultWorkers = 8

// NewMiner wires a miner to its two services. Defaults: 100 elevation
// samples per segment, 8×8 grid, 8 concurrent workers.
func NewMiner(segClient *Client, elevClient *elevsvc.Client) *Miner {
	return &Miner{
		segments:  segClient,
		elevation: elevClient,
		Samples:   100,
		GridRows:  8,
		GridCols:  8,
		Workers:   DefaultWorkers,
	}
}

// MineBoundary mines all segments for one class: boundary B is divided into
// GridRows×GridCols regions r_i with boundaries b_i; ExploreSegments(b_i)
// yields the top-10 paths per region; each path is augmented with its
// elevation profile elev_i^j. Duplicate segment IDs across regions are
// dropped (regions are disjoint, so duplicates only arise from re-runs).
//
// Both the explore and elevation phases fan out over at most Workers
// concurrent calls, but the result is deterministic: cells are merged in
// grid order and segments keep per-cell service order, so any Workers value
// produces byte-identical output for the same services. The first failure
// cancels the sweep's in-flight calls; when several calls fail, the error
// of the earliest grid cell (or segment) is reported, keeping failures as
// reproducible as successes.
func (m *Miner) MineBoundary(ctx context.Context, label string, boundary geo.BBox) ([]MinedSegment, error) {
	if m.GridRows < 1 || m.GridCols < 1 {
		return nil, fmt.Errorf("segments: invalid grid %dx%d", m.GridRows, m.GridCols)
	}
	if m.Samples < 2 {
		return nil, fmt.Errorf("segments: invalid sample count %d", m.Samples)
	}

	ctx, span := obs.StartSpan(ctx, "mine/"+label)
	defer span.End()
	pool := m.pool()

	// Phase 1: explore every grid cell concurrently, results in cell order.
	// With a checkpoint journal, cells completed by an earlier (crashed or
	// drained) run restore their recorded hits without a service call.
	cells := boundary.Grid(m.GridRows, m.GridCols)
	perCell := make([][]Segment, len(cells))
	exploreCtx, exploreSpan := obs.StartSpan(ctx, "mine/"+label+"/explore")
	err := pool.ForEachIndex(exploreCtx, len(cells), func(ctx context.Context, i int) error {
		key := m.exploreKey(label, i)
		var hits []Segment
		if ok, jerr := m.Checkpoint.Get(key, &hits); jerr == nil && ok {
			perCell[i] = hits
			return nil
		}
		hits, err := m.segments.Explore(ctx, cells[i])
		if err != nil {
			return fmt.Errorf("segments: exploring %v: %w", cells[i], err)
		}
		perCell[i] = hits
		return m.Checkpoint.Put(key, hits)
	})
	exploreSpan.SetAttr("cells", fmt.Sprint(len(cells)))
	exploreSpan.End()
	if err != nil {
		return nil, err
	}

	// Deduplicate in deterministic merge order: grid order outer, service
	// rank order inner — exactly the order the serial sweep produced.
	seen := make(map[string]bool)
	var uniq []Segment
	for _, hits := range perCell {
		for _, seg := range hits {
			if seen[seg.ID] {
				continue
			}
			seen[seg.ID] = true
			uniq = append(uniq, seg)
		}
	}

	// Phase 2: fetch elevation profiles concurrently, one slot per segment.
	profiles := make([][]float64, len(uniq))
	elevCtx, elevSpan := obs.StartSpan(ctx, "mine/"+label+"/elevation")
	err = pool.ForEachIndex(elevCtx, len(uniq), func(ctx context.Context, i int) error {
		key := m.elevKey(uniq[i].ID)
		var elevs []float64
		if ok, jerr := m.Checkpoint.Get(key, &elevs); jerr == nil && ok {
			profiles[i] = elevs
			return nil
		}
		elevs, err := m.elevation.ElevationAlongPath(ctx, uniq[i].Path, m.Samples)
		if err != nil {
			return fmt.Errorf("segments: elevation for %s: %w", uniq[i].ID, err)
		}
		profiles[i] = elevs
		return m.Checkpoint.Put(key, elevs)
	})
	elevSpan.SetAttr("segments", fmt.Sprint(len(uniq)))
	elevSpan.End()
	if err != nil {
		return nil, err
	}
	span.SetAttr("segments", fmt.Sprint(len(uniq)))
	minerSegmentsMined.Add(int64(len(uniq)))

	out := make([]MinedSegment, 0, len(uniq))
	for i, seg := range uniq {
		out = append(out, MinedSegment{
			ID:         seg.ID,
			Label:      label,
			Path:       seg.Path,
			Elevations: profiles[i],
		})
	}
	return out, nil
}

// pool builds the supervised worker pool a sweep phase fans out over:
// bounded concurrency, per-unit deadline budgets, panic recovery (a
// panicking unit surfaces as a *durable.PanicError that quarantines its
// class), and drain-aware dispatch.
func (m *Miner) pool() durable.Pool {
	workers := m.Workers
	if workers < 1 {
		workers = 1
	}
	return durable.Pool{Workers: workers, UnitTimeout: m.UnitTimeout, Drain: m.Drain}
}

// exploreKey names one grid-cell explore unit in the checkpoint journal.
// The grid shape is part of the key so a journal recorded under a different
// decomposition is never misapplied.
func (m *Miner) exploreKey(label string, cell int) string {
	return fmt.Sprintf("explore/%s/%dx%d/%d", label, m.GridRows, m.GridCols, cell)
}

// elevKey names one elevation-profile unit in the checkpoint journal.
func (m *Miner) elevKey(segID string) string {
	return fmt.Sprintf("elev/%d/%s", m.Samples, segID)
}

// MineClasses runs MineBoundary for every (label, boundary) pair in
// ascending label order and concatenates the results, so the mined dataset
// is identical across runs regardless of map iteration order. The first
// failing class aborts the sweep; use MineClassesPartial to keep going.
func (m *Miner) MineClasses(ctx context.Context, classes map[string]geo.BBox) ([]MinedSegment, error) {
	var out []MinedSegment
	for _, label := range sortedLabels(classes) {
		mined, err := m.MineBoundary(ctx, label, classes[label])
		if err != nil {
			return nil, err
		}
		out = append(out, mined...)
	}
	return out, nil
}

// ClassError records the failure of one class's sweep.
type ClassError struct {
	Label string
	Err   error
	// Elapsed is how long the class's sweep ran before failing. Zero for
	// classes that were never attempted (context dead or drain closed
	// before their turn).
	Elapsed time.Duration
}

// SweepError aggregates the per-class failures of a partial sweep, in
// label order.
type SweepError struct {
	PerClass []ClassError
	// Elapsed is the wall time of the whole partial sweep, attempted
	// classes and all, so a failure report carries how much work the run
	// represents.
	Elapsed time.Duration
}

// Error implements the error interface.
func (e *SweepError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "segments: %d class(es) failed", len(e.PerClass))
	if e.Elapsed > 0 {
		fmt.Fprintf(&sb, " (sweep ran %s)", e.Elapsed.Round(time.Millisecond))
	}
	sb.WriteString(":")
	for _, ce := range e.PerClass {
		fmt.Fprintf(&sb, " %s: %v", ce.Label, ce.Err)
		if ce.Elapsed > 0 {
			fmt.Fprintf(&sb, " (after %s)", ce.Elapsed.Round(time.Millisecond))
		}
		sb.WriteString(";")
	}
	return strings.TrimSuffix(sb.String(), ";")
}

// Unwrap exposes the per-class errors to errors.Is / errors.As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.PerClass))
	for i, ce := range e.PerClass {
		errs[i] = ce.Err
	}
	return errs
}

// Interrupted reports whether the sweep failure is (entirely) a graceful
// drain rather than real per-class errors: every recorded failure unwraps
// to durable.ErrInterrupted. CLIs use it to exit 0 with a partial summary.
func (e *SweepError) Interrupted() bool {
	if e == nil {
		return false
	}
	for _, ce := range e.PerClass {
		if !errors.Is(ce.Err, durable.ErrInterrupted) {
			return false
		}
	}
	return len(e.PerClass) > 0
}

// MineClassesPartial is MineClasses with partial-failure semantics: every
// class is attempted (in ascending label order), successful classes
// contribute their samples, and failing classes are reported together in
// the returned *SweepError (nil when everything succeeded). A dead context
// stops the sweep early, charging the context error to every class not yet
// attempted; a drain signal does the same with durable.ErrInterrupted
// (and SweepError.Interrupted reports true). A panicking work unit
// quarantines only its class: the panic is recovered into a
// *durable.PanicError carried by that class's ClassError while the other
// classes keep mining.
//
// With a Checkpoint journal, every completed class is additionally marked
// (key "class/<label>") and the journal is flushed before returning, so a
// SIGKILL right after the sweep loses nothing.
func (m *Miner) MineClassesPartial(ctx context.Context, classes map[string]geo.BBox) ([]MinedSegment, *SweepError) {
	var out []MinedSegment
	var sweepErr SweepError
	sweepStart := time.Now()
	labels := sortedLabels(classes)
	for i, label := range labels {
		err := ctx.Err()
		if err == nil && m.Drain != nil {
			select {
			case <-m.Drain:
				err = durable.ErrInterrupted
			default:
			}
		}
		if err != nil {
			for _, rest := range labels[i:] {
				sweepErr.PerClass = append(sweepErr.PerClass, ClassError{Label: rest, Err: err})
			}
			break
		}
		classStart := time.Now()
		mined, err := m.MineBoundary(ctx, label, classes[label])
		if err == nil {
			err = m.Checkpoint.Put("class/"+label, len(mined))
		}
		elapsed := time.Since(classStart)
		minerClassSeconds.Observe(elapsed.Seconds())
		if err != nil {
			minerClassesFailed.Inc()
			sweepErr.PerClass = append(sweepErr.PerClass, ClassError{Label: label, Err: err, Elapsed: elapsed})
			continue
		}
		minerClassesOK.Inc()
		out = append(out, mined...)
	}
	if err := m.Checkpoint.Flush(); err != nil && len(sweepErr.PerClass) == 0 {
		sweepErr.PerClass = append(sweepErr.PerClass, ClassError{Label: "(journal)", Err: err})
	}
	if len(sweepErr.PerClass) == 0 {
		return out, nil
	}
	sweepErr.Elapsed = time.Since(sweepStart)
	return out, &sweepErr
}

func sortedLabels(classes map[string]geo.BBox) []string {
	labels := make([]string, 0, len(classes))
	for label := range classes {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	return labels
}
