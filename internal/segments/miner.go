package segments

import (
	"context"
	"fmt"

	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
)

// MinedSegment is one labeled sample produced by the miner: a segment route
// augmented with its elevation profile, tagged with the class label of the
// boundary it was mined from.
type MinedSegment struct {
	// ID is the segment identity at the fitness service.
	ID string
	// Label is the class label of the mining boundary (city or borough).
	Label string
	// Path is the segment route.
	Path geo.Path
	// Elevations is the elevation profile from the elevation service.
	Elevations []float64
}

// Miner executes the paper's Fig. 4 pipeline: divide the class boundary
// into a grid of regions, call ExploreSegments per region (top-10 each),
// deduplicate, and augment every path with an elevation profile.
type Miner struct {
	segments  *Client
	elevation *elevsvc.Client
	// Samples is the per-profile elevation sample count requested from the
	// elevation service.
	Samples int
	// GridRows and GridCols control the boundary decomposition.
	GridRows int
	GridCols int
}

// NewMiner wires a miner to its two services. Defaults: 100 elevation
// samples per segment, 8×8 grid.
func NewMiner(segClient *Client, elevClient *elevsvc.Client) *Miner {
	return &Miner{
		segments:  segClient,
		elevation: elevClient,
		Samples:   100,
		GridRows:  8,
		GridCols:  8,
	}
}

// MineBoundary mines all segments for one class: boundary B is divided into
// GridRows×GridCols regions r_i with boundaries b_i; ExploreSegments(b_i)
// yields the top-10 paths per region; each path is augmented with its
// elevation profile elev_i^j. Duplicate segment IDs across regions are
// dropped (regions are disjoint, so duplicates only arise from re-runs).
func (m *Miner) MineBoundary(ctx context.Context, label string, boundary geo.BBox) ([]MinedSegment, error) {
	if m.GridRows < 1 || m.GridCols < 1 {
		return nil, fmt.Errorf("segments: invalid grid %dx%d", m.GridRows, m.GridCols)
	}
	if m.Samples < 2 {
		return nil, fmt.Errorf("segments: invalid sample count %d", m.Samples)
	}

	seen := make(map[string]bool)
	var out []MinedSegment
	for _, cell := range boundary.Grid(m.GridRows, m.GridCols) {
		hits, err := m.segments.Explore(ctx, cell)
		if err != nil {
			return nil, fmt.Errorf("segments: exploring %v: %w", cell, err)
		}
		for _, seg := range hits {
			if seen[seg.ID] {
				continue
			}
			seen[seg.ID] = true

			elevs, err := m.elevation.ElevationAlongPath(ctx, seg.Path, m.Samples)
			if err != nil {
				return nil, fmt.Errorf("segments: elevation for %s: %w", seg.ID, err)
			}
			out = append(out, MinedSegment{
				ID:         seg.ID,
				Label:      label,
				Path:       seg.Path,
				Elevations: elevs,
			})
		}
	}
	return out, nil
}

// MineClasses runs MineBoundary for every (label, boundary) pair and
// concatenates the results.
func (m *Miner) MineClasses(ctx context.Context, classes map[string]geo.BBox) ([]MinedSegment, error) {
	var out []MinedSegment
	for label, boundary := range classes {
		mined, err := m.MineBoundary(ctx, label, boundary)
		if err != nil {
			return nil, err
		}
		out = append(out, mined...)
	}
	return out, nil
}
