package segments

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/obs"
)

// SegmentJSON is the wire form of a segment: the route travels as an
// encoded polyline, exactly how the mined service shipped geolocation data.
type SegmentJSON struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Points     string `json:"points"` // encoded polyline
	Popularity int    `json:"popularity"`
}

// ExploreResponse is the explore endpoint's envelope.
type ExploreResponse struct {
	Status       string        `json:"status"`
	ErrorMessage string        `json:"error_message,omitempty"`
	Segments     []SegmentJSON `json:"segments,omitempty"`
}

// Server exposes a Store over HTTP.
type Server struct {
	store      *Store
	logf       func(format string, args ...any)
	pprof      bool
	shardIndex int
	shardCount int
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogf overrides the server's log function (default: error-level lines
// on the process obs logger).
func WithLogf(logf func(string, ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof(enabled bool) ServerOption {
	return func(s *Server) { s.pprof = enabled }
}

// WithShard tags this instance as shard index of count in a sharded tier;
// /healthz and /metrics report the identity.
func WithShard(index, count int) ServerOption {
	return func(s *Server) { s.shardIndex, s.shardCount = index, count }
}

// obsErrorf is the default logf: error-level lines on the process obs
// logger, resolved per call so SetDefaultLogger takes effect everywhere.
func obsErrorf(format string, args ...any) {
	obs.DefaultLogger().Errorf(format, args...)
}

// NewServer wraps a store.
func NewServer(store *Store, opts ...ServerOption) *Server {
	s := &Server{store: store, logf: obsErrorf}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the HTTP routing for the service, hardened the same way
// as the elevation service: panic recovery, per-request timeout, and
// max-in-flight load shedding with 429 + Retry-After; /healthz bypasses
// shedding for liveness probes and /metrics exposes the process obs
// registry; see httpx.NewServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/segments/explore", s.handleExplore)

	return httpx.NewServeMux(mux, httpx.MuxConfig{
		Service: "segments",
		Harden: httpx.ServerConfig{
			MaxInFlight:    256,
			RequestTimeout: 15 * time.Second,
			Logf:           s.logf,
		},
		Pprof:      s.pprof,
		ShardIndex: s.shardIndex,
		ShardCount: s.shardCount,
	})
}

// handleExplore implements ExploreSegments:
// GET /v1/segments/explore?sw_lat=..&sw_lng=..&ne_lat=..&ne_lng=..
// Returns the top-10 most popular segments fully inside the boundary.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	parse := func(key string) (float64, bool) {
		v, err := strconv.ParseFloat(q.Get(key), 64)
		return v, err == nil
	}
	swLat, ok1 := parse("sw_lat")
	swLng, ok2 := parse("sw_lng")
	neLat, ok3 := parse("ne_lat")
	neLng, ok4 := parse("ne_lng")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		writeExplore(w, http.StatusBadRequest, ExploreResponse{
			Status: "INVALID_REQUEST", ErrorMessage: "sw_lat, sw_lng, ne_lat, ne_lng must be numbers",
		})
		return
	}
	bounds := geo.BBox{
		SW: geo.LatLng{Lat: swLat, Lng: swLng},
		NE: geo.LatLng{Lat: neLat, Lng: neLng},
	}
	if !bounds.Valid() {
		writeExplore(w, http.StatusBadRequest, ExploreResponse{
			Status: "INVALID_REQUEST", ErrorMessage: "boundary corners out of order or out of range",
		})
		return
	}

	hits := s.store.Explore(bounds, ExploreLimit)
	out := make([]SegmentJSON, 0, len(hits))
	for _, seg := range hits {
		out = append(out, SegmentJSON{
			ID:         seg.ID,
			Name:       seg.Name,
			Points:     geo.EncodePolyline(seg.Path),
			Popularity: seg.Popularity,
		})
	}
	writeExplore(w, http.StatusOK, ExploreResponse{Status: "OK", Segments: out})
}

func writeExplore(w http.ResponseWriter, code int, resp ExploreResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		obsErrorf("segments: encoding response: %v", err)
	}
}
