package segments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
)

// Client calls an ExploreSegments service over HTTP — against a single
// instance (NewClient) or a sharded tier behind an endpoint pool
// (NewPoolClient), where each explore routes by consistent hash on its
// canonical bounds query so a grid cell always hits the same shard.
type Client struct {
	baseURL string
	httpc   httpx.Doer
	pool    *httpx.Pool
}

// NewClient creates a client for the service at baseURL (trailing slashes
// are normalized away). httpc may be a bare *http.Client or an httpx.Client
// carrying retries and rate limits; nil gets a default httpx.Client with
// per-attempt timeouts and bounded retries, so a hung server can never
// block a sweep forever.
func NewClient(baseURL string, httpc httpx.Doer) *Client {
	if httpc == nil {
		httpc = httpx.NewClient(nil)
	}
	return &Client{baseURL: httpx.NormalizeBaseURL(baseURL), httpc: httpc}
}

// NewPoolClient creates a client issuing requests through a multi-endpoint
// pool. The pool owns retries, failover, and circuit breaking — do not hand
// it a transport that retries internally.
func NewPoolClient(pool *httpx.Pool) *Client {
	return &Client{pool: pool}
}

// APIError is a non-OK service response.
type APIError struct {
	Status   string
	Message  string
	HTTPCode int
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("segments: %s (http %d): %s", e.Status, e.HTTPCode, e.Message)
}

// Explore fetches the top-10 segments fully inside bounds, decoding each
// polyline back to a path.
func (c *Client) Explore(ctx context.Context, bounds geo.BBox) ([]Segment, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("segments: invalid bounds %v", bounds)
	}
	q := url.Values{}
	q.Set("sw_lat", strconv.FormatFloat(bounds.SW.Lat, 'f', -1, 64))
	q.Set("sw_lng", strconv.FormatFloat(bounds.SW.Lng, 'f', -1, 64))
	q.Set("ne_lat", strconv.FormatFloat(bounds.NE.Lat, 'f', -1, 64))
	q.Set("ne_lng", strconv.FormatFloat(bounds.NE.Lng, 'f', -1, 64))

	// url.Values.Encode sorts keys, so the query doubles as the canonical
	// cell identity the pool shards on.
	pathAndQuery := "/v1/segments/explore?" + q.Encode()
	httpResp, err := c.issue(ctx, pathAndQuery)
	if err != nil {
		return nil, fmt.Errorf("segments: request failed: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, httpResp.Body)
		_ = httpResp.Body.Close()
	}()

	// A proxy or load balancer in front of the service answers errors in
	// plain text or HTML; decoding those as JSON used to misreport a 502
	// as "invalid character" noise. Only JSON bodies carry the envelope.
	if !jsonBody(httpResp) {
		snippet := bodySnippet(httpResp.Body)
		return nil, &APIError{
			Status:   fmt.Sprintf("HTTP_%d", httpResp.StatusCode),
			Message:  snippet,
			HTTPCode: httpResp.StatusCode,
		}
	}

	var resp ExploreResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("segments: decoding response: %w", err)
	}
	if resp.Status != "OK" {
		return nil, &APIError{Status: resp.Status, Message: resp.ErrorMessage, HTTPCode: httpResp.StatusCode}
	}

	out := make([]Segment, 0, len(resp.Segments))
	for _, sj := range resp.Segments {
		path, err := geo.DecodePolyline(sj.Points)
		if err != nil {
			return nil, fmt.Errorf("segments: segment %s: %w", sj.ID, err)
		}
		out = append(out, Segment{
			ID:         sj.ID,
			Name:       sj.Name,
			Path:       path,
			Popularity: sj.Popularity,
		})
	}
	return out, nil
}

// issue sends the GET through the pool (hashing the path+query for shard
// affinity) or the single-endpoint transport.
func (c *Client) issue(ctx context.Context, pathAndQuery string) (*http.Response, error) {
	if c.pool != nil {
		return c.pool.Get(ctx, httpx.HashKey(pathAndQuery), pathAndQuery)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+pathAndQuery, nil)
	if err != nil {
		return nil, fmt.Errorf("building request: %w", err)
	}
	return c.httpc.Do(req)
}

// jsonBody reports whether the response declares a JSON media type.
func jsonBody(resp *http.Response) bool {
	mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		return false
	}
	return mt == "application/json" || strings.HasSuffix(mt, "+json")
}

// bodySnippet reads a bounded prefix of an error body for diagnostics.
func bodySnippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 256))
	return strings.TrimSpace(string(b))
}
