package segments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"elevprivacy/internal/geo"
)

// Client calls an ExploreSegments service over HTTP.
type Client struct {
	baseURL string
	httpc   *http.Client
}

// NewClient creates a client for the service at baseURL. httpc may be nil
// to use http.DefaultClient.
func NewClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, httpc: httpc}
}

// APIError is a non-OK service response.
type APIError struct {
	Status   string
	Message  string
	HTTPCode int
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("segments: %s (http %d): %s", e.Status, e.HTTPCode, e.Message)
}

// Explore fetches the top-10 segments fully inside bounds, decoding each
// polyline back to a path.
func (c *Client) Explore(ctx context.Context, bounds geo.BBox) ([]Segment, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("segments: invalid bounds %v", bounds)
	}
	q := url.Values{}
	q.Set("sw_lat", strconv.FormatFloat(bounds.SW.Lat, 'f', -1, 64))
	q.Set("sw_lng", strconv.FormatFloat(bounds.SW.Lng, 'f', -1, 64))
	q.Set("ne_lat", strconv.FormatFloat(bounds.NE.Lat, 'f', -1, 64))
	q.Set("ne_lng", strconv.FormatFloat(bounds.NE.Lng, 'f', -1, 64))

	u := c.baseURL + "/v1/segments/explore?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("segments: building request: %w", err)
	}
	httpResp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("segments: request failed: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, httpResp.Body)
		_ = httpResp.Body.Close()
	}()

	var resp ExploreResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("segments: decoding response: %w", err)
	}
	if resp.Status != "OK" {
		return nil, &APIError{Status: resp.Status, Message: resp.ErrorMessage, HTTPCode: httpResp.StatusCode}
	}

	out := make([]Segment, 0, len(resp.Segments))
	for _, sj := range resp.Segments {
		path, err := geo.DecodePolyline(sj.Points)
		if err != nil {
			return nil, fmt.Errorf("segments: segment %s: %w", sj.ID, err)
		}
		out = append(out, Segment{
			ID:         sj.ID,
			Name:       sj.Name,
			Path:       path,
			Popularity: sj.Popularity,
		})
	}
	return out, nil
}
