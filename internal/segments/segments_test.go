package segments

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/terrain"
)

func cityBounds() geo.BBox {
	return geo.NewBBox(geo.LatLng{Lat: 38.80, Lng: -77.15}, geo.LatLng{Lat: 39.00, Lng: -76.90})
}

func seg(id string, pop int, pts ...geo.LatLng) Segment {
	return Segment{ID: id, Name: "seg " + id, Path: geo.Path(pts), Popularity: pop}
}

func TestStoreAddValidation(t *testing.T) {
	s := NewStore()
	if err := s.Add(Segment{ID: "", Path: geo.Path{{}, {}}}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := s.Add(seg("a", 1, geo.LatLng{Lat: 1, Lng: 1})); err == nil {
		t.Error("single-point path accepted")
	}
	if err := s.Add(seg("a", 1, geo.LatLng{Lat: 1, Lng: 1}, geo.LatLng{Lat: 1.001, Lng: 1})); err != nil {
		t.Errorf("valid segment rejected: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStoreAddReplacesByID(t *testing.T) {
	s := NewStore()
	p := geo.Path{{Lat: 1, Lng: 1}, {Lat: 1.001, Lng: 1}}
	_ = s.Add(Segment{ID: "x", Name: "first", Path: p, Popularity: 1})
	_ = s.Add(Segment{ID: "x", Name: "second", Path: p, Popularity: 9})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	got, ok := s.Get("x")
	if !ok || got.Name != "second" || got.Popularity != 9 {
		t.Errorf("Get = %+v", got)
	}
}

func TestExploreEncapsulationAndRanking(t *testing.T) {
	s := NewStore()
	inside1 := seg("in1", 50, geo.LatLng{Lat: 0.2, Lng: 0.2}, geo.LatLng{Lat: 0.3, Lng: 0.3})
	inside2 := seg("in2", 90, geo.LatLng{Lat: 0.5, Lng: 0.5}, geo.LatLng{Lat: 0.6, Lng: 0.6})
	straddle := seg("out1", 999, geo.LatLng{Lat: 0.9, Lng: 0.9}, geo.LatLng{Lat: 1.5, Lng: 1.5})
	outside := seg("out2", 999, geo.LatLng{Lat: 2, Lng: 2}, geo.LatLng{Lat: 2.1, Lng: 2.1})
	for _, sg := range []Segment{inside1, inside2, straddle, outside} {
		if err := s.Add(sg); err != nil {
			t.Fatal(err)
		}
	}

	bounds := geo.NewBBox(geo.LatLng{Lat: 0, Lng: 0}, geo.LatLng{Lat: 1, Lng: 1})
	got := s.Explore(bounds, 10)
	if len(got) != 2 {
		t.Fatalf("Explore returned %d segments, want 2", len(got))
	}
	// Sorted by popularity descending.
	if got[0].ID != "in2" || got[1].ID != "in1" {
		t.Errorf("order = %s, %s; want in2, in1", got[0].ID, got[1].ID)
	}
}

func TestExploreTopTenLimit(t *testing.T) {
	s := NewStore()
	bounds := geo.NewBBox(geo.LatLng{Lat: 0, Lng: 0}, geo.LatLng{Lat: 1, Lng: 1})
	for i := 0; i < 25; i++ {
		lat := 0.1 + float64(i)*0.03
		err := s.Add(Segment{
			ID:         string(rune('a'+i%26)) + "-seg",
			Name:       "s",
			Path:       geo.Path{{Lat: lat, Lng: 0.5}, {Lat: lat + 0.01, Lng: 0.5}},
			Popularity: i,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := s.Explore(bounds, 0) // 0 => service default
	if len(got) != ExploreLimit {
		t.Errorf("Explore returned %d, want %d", len(got), ExploreLimit)
	}
	// Asking for more than the limit is clamped.
	got = s.Explore(bounds, 99)
	if len(got) != ExploreLimit {
		t.Errorf("Explore(k=99) returned %d, want %d", len(got), ExploreLimit)
	}
	// Highest popularity (24) must be first.
	if got[0].Popularity != 24 {
		t.Errorf("top popularity = %d, want 24", got[0].Popularity)
	}
}

func TestExploreDeterministicTieBreak(t *testing.T) {
	s := NewStore()
	bounds := geo.NewBBox(geo.LatLng{Lat: 0, Lng: 0}, geo.LatLng{Lat: 1, Lng: 1})
	p := geo.Path{{Lat: 0.4, Lng: 0.4}, {Lat: 0.5, Lng: 0.5}}
	_ = s.Add(Segment{ID: "b", Path: p, Popularity: 5})
	_ = s.Add(Segment{ID: "a", Path: p, Popularity: 5})
	got := s.Explore(bounds, 10)
	if got[0].ID != "a" || got[1].ID != "b" {
		t.Errorf("tie break order = %s, %s; want a, b", got[0].ID, got[1].ID)
	}
}

func TestExploreReturnsCopies(t *testing.T) {
	s := NewStore()
	p := geo.Path{{Lat: 0.4, Lng: 0.4}, {Lat: 0.5, Lng: 0.5}}
	_ = s.Add(Segment{ID: "a", Path: p, Popularity: 5})
	bounds := geo.NewBBox(geo.LatLng{Lat: 0, Lng: 0}, geo.LatLng{Lat: 1, Lng: 1})
	got := s.Explore(bounds, 10)
	got[0].Path[0].Lat = 99
	again := s.Explore(bounds, 10)
	if again[0].Path[0].Lat == 99 {
		t.Error("Explore leaked internal path storage")
	}
}

func TestPopulateGeneratesContainedSegments(t *testing.T) {
	s := NewStore()
	rng := rand.New(rand.NewSource(3))
	if err := s.Populate(cityBounds(), 40, "wdc", DefaultPopulateConfig(), rng); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 40 {
		t.Fatalf("Len = %d, want 40", s.Len())
	}
	// Everything must be recoverable by exploring the full boundary in a
	// fine grid (top-10 per cell).
	// A grid sweep recovers a healthy share; segments straddling cell
	// boundaries are legitimately lost (the paper notes the same effect).
	var found int
	for _, cell := range cityBounds().Grid(10, 10) {
		found += len(s.Explore(cell, ExploreLimit))
	}
	if found < 8 {
		t.Errorf("only %d/40 segments recoverable from a 10x10 grid sweep", found)
	}
}

func TestStoreConcurrentUse(t *testing.T) {
	s := NewStore()
	bounds := cityBounds()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			_ = s.Populate(bounds, 20, string(rune('a'+w)), DefaultPopulateConfig(), rng)
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Explore(bounds, 10)
			}
		}()
	}
	wg.Wait()
}

// newMiningStack stands up both services plus a miner against a real city
// terrain, returning the miner.
func newMiningStack(t *testing.T, store *Store) *Miner {
	t.Helper()
	world := terrain.World()
	wdc, err := terrain.CityByName(world, "WDC")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := wdc.Terrain()
	if err != nil {
		t.Fatal(err)
	}

	segSrv := httptest.NewServer(NewServer(store, WithLogf(t.Logf)).Handler())
	t.Cleanup(segSrv.Close)
	elevSrv := httptest.NewServer(elevsvc.NewServer(tr, elevsvc.WithLogf(t.Logf)).Handler())
	t.Cleanup(elevSrv.Close)

	return NewMiner(
		NewClient(segSrv.URL, segSrv.Client()),
		elevsvc.NewClient(elevSrv.URL, elevSrv.Client()),
	)
}

func TestMineBoundaryEndToEnd(t *testing.T) {
	store := NewStore()
	rng := rand.New(rand.NewSource(11))
	if err := store.Populate(cityBounds(), 60, "wdc", DefaultPopulateConfig(), rng); err != nil {
		t.Fatal(err)
	}

	miner := newMiningStack(t, store)
	miner.Samples = 50
	mined, err := miner.MineBoundary(context.Background(), "Washington DC", cityBounds())
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("mined nothing")
	}
	seen := map[string]bool{}
	for _, ms := range mined {
		if ms.Label != "Washington DC" {
			t.Errorf("label = %q", ms.Label)
		}
		if len(ms.Elevations) != 50 {
			t.Errorf("%s: %d elevation samples, want 50", ms.ID, len(ms.Elevations))
		}
		if seen[ms.ID] {
			t.Errorf("duplicate segment %s", ms.ID)
		}
		seen[ms.ID] = true
		for _, e := range ms.Elevations {
			if e < 0 || e > 400 {
				t.Errorf("%s: implausible WDC elevation %f", ms.ID, e)
			}
		}
	}
	t.Logf("mined %d/60 segments (grid 8x8, top-10 per cell)", len(mined))
}

func TestMineClassesMultipleLabels(t *testing.T) {
	store := NewStore()
	rng := rand.New(rand.NewSource(21))
	north := geo.NewBBox(geo.LatLng{Lat: 38.90, Lng: -77.15}, geo.LatLng{Lat: 39.00, Lng: -76.90})
	south := geo.NewBBox(geo.LatLng{Lat: 38.80, Lng: -77.15}, geo.LatLng{Lat: 38.90, Lng: -76.90})
	if err := store.Populate(north, 15, "n", DefaultPopulateConfig(), rng); err != nil {
		t.Fatal(err)
	}
	if err := store.Populate(south, 15, "s", DefaultPopulateConfig(), rng); err != nil {
		t.Fatal(err)
	}

	miner := newMiningStack(t, store)
	miner.Samples = 20
	miner.GridRows, miner.GridCols = 4, 4
	mined, err := miner.MineClasses(context.Background(), map[string]geo.BBox{
		"North": north,
		"South": south,
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]int{}
	for _, ms := range mined {
		labels[ms.Label]++
	}
	if labels["North"] == 0 || labels["South"] == 0 {
		t.Errorf("label distribution = %v", labels)
	}
}

func TestMinerValidation(t *testing.T) {
	miner := NewMiner(nil, nil)
	miner.GridRows = 0
	if _, err := miner.MineBoundary(context.Background(), "x", cityBounds()); err == nil {
		t.Error("grid 0 accepted")
	}
	miner = NewMiner(nil, nil)
	miner.Samples = 1
	if _, err := miner.MineBoundary(context.Background(), "x", cityBounds()); err == nil {
		t.Error("samples 1 accepted")
	}
}

func TestServerRejectsBadBounds(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), WithLogf(t.Logf)).Handler())
	defer srv.Close()

	for _, query := range []string{
		"sw_lat=abc&sw_lng=1&ne_lat=2&ne_lng=2",
		"sw_lat=2&sw_lng=2&ne_lat=1&ne_lng=1", // inverted
		"sw_lat=91&sw_lng=0&ne_lat=92&ne_lng=1",
		"", // all missing
	} {
		resp, err := http.Get(srv.URL + "/v1/segments/explore?" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", query, resp.StatusCode)
		}
	}
}

func TestClientSurfacesAPIError(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), WithLogf(t.Logf)).Handler())
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())

	_, err := client.Explore(context.Background(), geo.BBox{
		SW: geo.LatLng{Lat: 95, Lng: 0}, NE: geo.LatLng{Lat: 96, Lng: 1},
	})
	if err == nil {
		t.Fatal("invalid bounds accepted")
	}
	// Client-side validation fires before the network call.
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("expected local validation error, got API error %v", apiErr)
	}
}

// TestExploreNonJSONErrorBodyBecomesAPIError pins the fix for the
// proxy-error bug: a plain-text 502 used to surface as a JSON decode
// failure instead of an *APIError carrying the HTTP code.
func TestExploreNonJSONErrorBodyBecomesAPIError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "Bad Gateway", http.StatusBadGateway)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	_, err := client.Explore(context.Background(), cityBounds())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.HTTPCode != http.StatusBadGateway || apiErr.Status != "HTTP_502" {
		t.Errorf("got %+v, want HTTP_502 with code 502", apiErr)
	}
}

func TestClientEmptyResult(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), WithLogf(t.Logf)).Handler())
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	got, err := client.Explore(context.Background(), cityBounds())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty store returned %d segments", len(got))
	}
}

func TestSegmentServerHealthz(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), WithLogf(t.Logf)).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// TestClientNormalizesTrailingSlash pins the base-URL fix: a configured
// address like "http://host:port/" used to produce "//v1/..." request paths
// that miss the mux routes entirely.
func TestClientNormalizesTrailingSlash(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewStore(), WithLogf(t.Logf)).Handler())
	defer srv.Close()
	client := NewClient(srv.URL+"///", srv.Client())

	if _, err := client.Explore(context.Background(), geo.BBox{
		SW: geo.LatLng{Lat: 1, Lng: 1}, NE: geo.LatLng{Lat: 2, Lng: 2},
	}); err != nil {
		t.Fatalf("explore through slash-suffixed base URL: %v", err)
	}
}
