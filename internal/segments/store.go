// Package segments implements the fitness-service side of the paper's data
// mining pipeline (Fig. 4): a store of user-created training route segments,
// an ExploreSegments HTTP API that returns only the top-10 most popular
// segments fully encapsulated by a query boundary, a client, and the
// grid-sweep miner that defeats the top-10 limit by decomposing a city
// boundary into small regions.
package segments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"elevprivacy/internal/activity"
	"elevprivacy/internal/geo"
)

// ExploreLimit is the maximum number of segments ExploreSegments returns
// for one boundary, mirroring the fitness service the paper mined.
const ExploreLimit = 10

// Segment is a user-created training route.
type Segment struct {
	// ID is the store-unique identity.
	ID string
	// Name is the human label ("hill repeats 07").
	Name string
	// Path is the segment's polyline route.
	Path geo.Path
	// Popularity is the number of recorded efforts; Explore ranks by it.
	Popularity int
}

// Store is an in-memory, concurrency-safe segment repository.
type Store struct {
	mu       sync.RWMutex
	segments []Segment
	byID     map[string]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: make(map[string]int)}
}

// Add inserts a segment. Adding an existing ID replaces the segment.
func (s *Store) Add(seg Segment) error {
	if seg.ID == "" {
		return fmt.Errorf("segments: empty ID")
	}
	if len(seg.Path) < 2 {
		return fmt.Errorf("segments: segment %s has %d points, need >= 2", seg.ID, len(seg.Path))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byID[seg.ID]; ok {
		s.segments[i] = seg
		return nil
	}
	s.byID[seg.ID] = len(s.segments)
	s.segments = append(s.segments, seg)
	return nil
}

// Len returns the number of stored segments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segments)
}

// Get returns the segment with the given ID.
func (s *Store) Get(id string) (Segment, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.byID[id]
	if !ok {
		return Segment{}, false
	}
	return s.segments[i], true
}

// Explore returns the top-k segments (by popularity, ties broken by ID for
// determinism) whose routes are FULLY encapsulated by bounds — a segment
// that straddles the boundary is not returned, exactly as the mined service
// behaves. k is capped at ExploreLimit.
func (s *Store) Explore(bounds geo.BBox, k int) []Segment {
	if k <= 0 || k > ExploreLimit {
		k = ExploreLimit
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	var hits []Segment
	for _, seg := range s.segments {
		if bounds.ContainsPath(seg.Path) {
			hits = append(hits, seg)
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Popularity != hits[j].Popularity {
			return hits[i].Popularity > hits[j].Popularity
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	// Copy paths so callers cannot mutate stored state.
	out := make([]Segment, len(hits))
	for i, h := range hits {
		out[i] = h
		out[i].Path = h.Path.Clone()
	}
	return out
}

// PopulateConfig tunes synthetic segment generation.
type PopulateConfig struct {
	// MinLengthMeters and MaxLengthMeters bound segment route lengths.
	MinLengthMeters float64
	MaxLengthMeters float64
	// MaxPopularity bounds the random effort count.
	MaxPopularity int
}

// DefaultPopulateConfig matches typical user-created running segments.
func DefaultPopulateConfig() PopulateConfig {
	return PopulateConfig{
		MinLengthMeters: 800,
		MaxLengthMeters: 4000,
		MaxPopularity:   5000,
	}
}

// Populate fills the store with n synthetic user-created segments inside
// bounds, IDs prefixed with idPrefix. Generation is deterministic for a
// given rng state.
func (s *Store) Populate(bounds geo.BBox, n int, idPrefix string, cfg PopulateConfig, rng *rand.Rand) error {
	gen, err := activity.NewRouteGenerator(bounds, rng)
	if err != nil {
		return fmt.Errorf("segments: populate: %w", err)
	}
	for i := 0; i < n; i++ {
		length := cfg.MinLengthMeters + rng.Float64()*(cfg.MaxLengthMeters-cfg.MinLengthMeters)
		var path geo.Path
		switch rng.Intn(3) {
		case 0:
			radius := length / 6.3
			path = gen.Loop(gen.RandomPoint(), radius)
		case 1:
			path = gen.OutAndBack(gen.RandomPoint(), rng.Float64()*360, length/2)
		default:
			path = gen.Wander(length)
		}
		seg := Segment{
			ID:         fmt.Sprintf("%s-%05d", idPrefix, i),
			Name:       fmt.Sprintf("%s segment %d", idPrefix, i),
			Path:       path,
			Popularity: 1 + rng.Intn(cfg.MaxPopularity),
		}
		if err := s.Add(seg); err != nil {
			return err
		}
	}
	return nil
}
