package segments

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/httpx"
	"elevprivacy/internal/terrain"
)

// instantSleep skips real backoff waits so retry-heavy tests run fast.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// faultPolicy gives the resilient stacks room to absorb injected fault runs
// without wall-clock delays.
func faultPolicy() httpx.Policy {
	return httpx.Policy{
		MaxAttempts: 6,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// faultableStack stands up both services with fault-injecting transports in
// front of resilient httpx clients, against the WDC terrain.
type faultableStack struct {
	miner  *Miner
	segFT  *httpx.FaultTripper
	elevFT *httpx.FaultTripper
}

func newFaultableStack(tb testing.TB, store *Store, segOpts, elevOpts []httpx.Option) *faultableStack {
	tb.Helper()
	world := terrain.World()
	wdc, err := terrain.CityByName(world, "WDC")
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := wdc.Terrain()
	if err != nil {
		tb.Fatal(err)
	}

	segSrv := httptest.NewServer(NewServer(store, WithLogf(tb.Logf)).Handler())
	tb.Cleanup(segSrv.Close)
	elevSrv := httptest.NewServer(elevsvc.NewServer(tr, elevsvc.WithLogf(tb.Logf)).Handler())
	tb.Cleanup(elevSrv.Close)

	segFT := httpx.NewFaultTripper(nil)
	elevFT := httpx.NewFaultTripper(nil)
	base := []httpx.Option{
		httpx.WithPolicy(faultPolicy()),
		httpx.WithSleep(instantSleep),
		httpx.WithJitterSeed(1),
	}
	segClient := httpx.NewClient(&http.Client{Transport: segFT}, append(base, segOpts...)...)
	elevClient := httpx.NewClient(&http.Client{Transport: elevFT}, append(base, elevOpts...)...)

	return &faultableStack{
		miner: NewMiner(
			NewClient(segSrv.URL, segClient),
			elevsvc.NewClient(elevSrv.URL, elevClient),
		),
		segFT:  segFT,
		elevFT: elevFT,
	}
}

func populatedStore(tb testing.TB, seed int64, n int) *Store {
	tb.Helper()
	store := NewStore()
	if err := store.Populate(cityBounds(), n, "wdc", DefaultPopulateConfig(), rand.New(rand.NewSource(seed))); err != nil {
		tb.Fatal(err)
	}
	return store
}

// TestMineClassesDeterministicOrder pins the fix for the map-iteration bug:
// mined sample order must be identical across runs even though classes is a
// Go map.
func TestMineClassesDeterministicOrder(t *testing.T) {
	store := populatedStore(t, 11, 60)
	b := cityBounds()
	// Overlapping halves so several labels yield samples.
	classes := map[string]geo.BBox{
		"delta": geo.NewBBox(b.SW, geo.LatLng{Lat: 38.92, Lng: b.NE.Lng}),
		"alpha": geo.NewBBox(geo.LatLng{Lat: 38.88, Lng: b.SW.Lng}, b.NE),
		"mike":  b,
	}

	stack := newFaultableStack(t, store, nil, nil)
	stack.miner.Samples = 20
	stack.miner.GridRows, stack.miner.GridCols = 4, 4

	first, err := stack.miner.MineClasses(context.Background(), classes)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("mined nothing")
	}
	second, err := stack.miner.MineClasses(context.Background(), classes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two identical MineClasses runs produced different output")
	}
	// Labels must come out in ascending order.
	rank := map[string]int{"alpha": 0, "delta": 1, "mike": 2}
	last := 0
	for _, ms := range first {
		r, ok := rank[ms.Label]
		if !ok {
			t.Fatalf("unknown label %q", ms.Label)
		}
		if r < last {
			t.Fatalf("labels out of sorted order: %q after rank %d", ms.Label, last)
		}
		last = r
	}
}

// TestMineBoundaryParallelMatchesSerial is the concurrent sweep's ordering
// guarantee: any Workers value produces byte-identical output.
func TestMineBoundaryParallelMatchesSerial(t *testing.T) {
	store := populatedStore(t, 11, 60)
	stack := newFaultableStack(t, store, nil, nil)
	stack.miner.Samples = 20

	stack.miner.Workers = 1
	serial, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("mined nothing")
	}
	for _, workers := range []int{2, 8, 32} {
		stack.miner.Workers = workers
		parallel, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d output differs from serial sweep", workers)
		}
	}
}

// TestMineClassesSurvivesSeededFaults is the acceptance gate: a full
// MineClasses sweep over a seeded schedule of transient 5xx + latency
// faults on both services must succeed with byte-identical output (same
// IDs, same order) to a fault-free run.
func TestMineClassesSurvivesSeededFaults(t *testing.T) {
	store := populatedStore(t, 11, 60)
	b := cityBounds()
	classes := map[string]geo.BBox{
		"North": geo.NewBBox(geo.LatLng{Lat: 38.90, Lng: b.SW.Lng}, b.NE),
		"South": geo.NewBBox(b.SW, geo.LatLng{Lat: 38.90, Lng: b.NE.Lng}),
	}

	clean := newFaultableStack(t, store, nil, nil)
	clean.miner.Samples = 20
	clean.miner.GridRows, clean.miner.GridCols = 4, 4
	want, err := clean.miner.MineClasses(context.Background(), classes)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fault-free run mined nothing")
	}

	flaky := newFaultableStack(t, store, nil, nil)
	flaky.miner.Samples = 20
	flaky.miner.GridRows, flaky.miner.GridCols = 4, 4
	transient := httpx.Fault{Delay: 200 * time.Microsecond, Status: http.StatusServiceUnavailable, Body: "overloaded"}
	flaky.segFT.Stub(httpx.MatchAll, httpx.RandomFaults(42, 4000, 0.3, transient)...)
	flaky.elevFT.Stub(httpx.MatchAll, httpx.RandomFaults(43, 4000, 0.3, transient)...)

	got, err := flaky.miner.MineClasses(context.Background(), classes)
	if err != nil {
		t.Fatalf("sweep under seeded faults failed: %v", err)
	}
	if flaky.segFT.Injected() == 0 || flaky.elevFT.Injected() == 0 {
		t.Fatalf("fault schedules never fired (seg %d, elev %d)",
			flaky.segFT.Injected(), flaky.elevFT.Injected())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("output under injected faults differs from fault-free run")
	}
	t.Logf("absorbed %d segment + %d elevation faults across %d+%d calls",
		flaky.segFT.Injected(), flaky.elevFT.Injected(),
		flaky.segFT.Calls(), flaky.elevFT.Calls())
}

// TestMineBoundaryFlakyExploreRecovers: a short burst of 503s on the
// explore endpoint is absorbed by retries without changing the output.
func TestMineBoundaryFlakyExploreRecovers(t *testing.T) {
	store := populatedStore(t, 11, 40)

	clean := newFaultableStack(t, store, nil, nil)
	clean.miner.Samples = 20
	want, err := clean.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatal(err)
	}

	flaky := newFaultableStack(t, store, nil, nil)
	flaky.miner.Samples = 20
	flaky.segFT.Stub(httpx.MatchPath("/explore"),
		httpx.Fault{Status: http.StatusServiceUnavailable},
		httpx.Fault{Status: http.StatusBadGateway},
	)
	got, err := flaky.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatal(err)
	}
	if flaky.segFT.Injected() != 2 {
		t.Errorf("injected = %d, want 2", flaky.segFT.Injected())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("recovered sweep differs from clean sweep")
	}
}

// TestMineBoundaryMidSweepElevationFailure: once the elevation service goes
// hard-down mid-sweep, the sweep aborts with the service's *APIError after
// retries are exhausted.
func TestMineBoundaryMidSweepElevationFailure(t *testing.T) {
	store := populatedStore(t, 11, 40)
	stack := newFaultableStack(t, store, nil, nil)
	stack.miner.Samples = 20

	// Two healthy profile fetches, then the service dies for good.
	schedule := []httpx.Fault{{}, {}}
	for i := 0; i < 400; i++ {
		schedule = append(schedule, httpx.Fault{Status: http.StatusServiceUnavailable, Body: "down"})
	}
	stack.elevFT.Stub(httpx.MatchPath("/elevation"), schedule...)

	_, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err == nil {
		t.Fatal("sweep succeeded against a dead elevation service")
	}
	var apiErr *elevsvc.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *elevsvc.APIError", err)
	}
	if apiErr.HTTPCode != http.StatusServiceUnavailable {
		t.Errorf("http code = %d, want 503", apiErr.HTTPCode)
	}
}

// TestMineClassesPartialReportsPerClassErrors: a partial sweep keeps the
// healthy classes and names the failing ones.
func TestMineClassesPartialReportsPerClassErrors(t *testing.T) {
	store := populatedStore(t, 11, 60)
	b := cityBounds()
	good := geo.NewBBox(geo.LatLng{Lat: 38.90, Lng: b.SW.Lng}, b.NE)
	bad := geo.NewBBox(b.SW, geo.LatLng{Lat: 38.90, Lng: b.NE.Lng})

	stack := newFaultableStack(t, store, nil, nil)
	stack.miner.Samples = 20
	stack.miner.GridRows, stack.miner.GridCols = 4, 4

	// Poison only the bad class's explore calls: its cells all carry the
	// southern boundary's sw_lat in the query string.
	matchBad := func(r *http.Request) bool {
		return strings.Contains(r.URL.RawQuery, "sw_lat=38.8") &&
			!strings.Contains(r.URL.RawQuery, "sw_lat=38.9")
	}
	faults := make([]httpx.Fault, 400)
	for i := range faults {
		faults[i] = httpx.Fault{Status: http.StatusBadGateway, Body: "proxy sad"}
	}
	stack.segFT.Stub(matchBad, faults...)

	mined, sweepErr := stack.miner.MineClassesPartial(context.Background(), map[string]geo.BBox{
		"Good": good,
		"Bad":  bad,
	})
	if sweepErr == nil {
		t.Fatal("poisoned class did not surface an error")
	}
	if len(sweepErr.PerClass) != 1 || sweepErr.PerClass[0].Label != "Bad" {
		t.Fatalf("sweep error = %v, want exactly class Bad", sweepErr)
	}
	var apiErr *APIError
	if !errors.As(sweepErr.PerClass[0].Err, &apiErr) || apiErr.HTTPCode != http.StatusBadGateway {
		t.Errorf("per-class err = %v, want *APIError with 502", sweepErr.PerClass[0].Err)
	}
	if len(mined) == 0 {
		t.Fatal("healthy class contributed nothing")
	}
	for _, ms := range mined {
		if ms.Label != "Good" {
			t.Fatalf("sample from failed class leaked: %q", ms.Label)
		}
	}
}

// TestMinerCircuitBreakerOpensAndRecovers: consecutive elevation failures
// trip the breaker (the sweep fails fast with ErrCircuitOpen in the chain);
// once the cooldown passes and the service is healthy again, the next sweep
// re-closes the breaker and succeeds.
func TestMinerCircuitBreakerOpensAndRecovers(t *testing.T) {
	store := populatedStore(t, 11, 40)
	breaker := httpx.NewBreaker(3, 150*time.Millisecond)
	stack := newFaultableStack(t, store, nil, []httpx.Option{httpx.WithBreaker(breaker)})
	stack.miner.Samples = 20
	stack.miner.Workers = 1 // serial keeps the consecutive-failure count exact

	stack.elevFT.Stub(httpx.MatchPath("/elevation"),
		httpx.Fault{Status: http.StatusServiceUnavailable},
		httpx.Fault{Status: http.StatusServiceUnavailable},
		httpx.Fault{Status: http.StatusServiceUnavailable},
	)

	_, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if !errors.Is(err, httpx.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after 3 consecutive failures", err)
	}

	time.Sleep(200 * time.Millisecond) // cooldown elapses; schedule is spent
	mined, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
	if err != nil {
		t.Fatalf("sweep after recovery failed: %v", err)
	}
	if len(mined) == 0 {
		t.Fatal("recovered sweep mined nothing")
	}
}

// TestMineBoundaryContextCancellation: a context that dies mid-mine (here
// via an injected latency stall) aborts the sweep promptly with the
// context's error.
func TestMineBoundaryContextCancellation(t *testing.T) {
	store := populatedStore(t, 11, 40)
	stack := newFaultableStack(t, store, nil, nil)
	stack.miner.Samples = 20

	stack.elevFT.Stub(httpx.MatchPath("/elevation"), httpx.Fault{Delay: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := stack.miner.MineBoundary(ctx, "WDC", cityBounds())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the stalled call")
	}
}

// TestMineClassesPartialDeadContext: a context already dead charges every
// remaining class with the context error instead of hanging.
func TestMineClassesPartialDeadContext(t *testing.T) {
	stack := newFaultableStack(t, NewStore(), nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mined, sweepErr := stack.miner.MineClassesPartial(ctx, map[string]geo.BBox{
		"A": cityBounds(),
		"B": cityBounds(),
	})
	if len(mined) != 0 {
		t.Errorf("dead context still mined %d samples", len(mined))
	}
	if sweepErr == nil || len(sweepErr.PerClass) != 2 {
		t.Fatalf("sweep error = %v, want both classes charged", sweepErr)
	}
	for _, ce := range sweepErr.PerClass {
		if !errors.Is(ce.Err, context.Canceled) {
			t.Errorf("class %s err = %v, want context.Canceled", ce.Label, ce.Err)
		}
	}
}

// BenchmarkMineBoundary measures sweep throughput by worker count; the
// serial-vs-parallel numbers land in EXPERIMENTS.md. The in-process
// services answer in microseconds, so this is the worker pool's overhead
// floor; BenchmarkMineBoundaryLatency is the realistic remote-API case.
func BenchmarkMineBoundary(b *testing.B) {
	store := populatedStore(b, 11, 120)
	stack := newFaultableStack(b, store, nil, nil)
	stack.miner.Samples = 100
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			stack.miner.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mined, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
				if err != nil {
					b.Fatal(err)
				}
				if len(mined) == 0 {
					b.Fatal("mined nothing")
				}
			}
		})
	}
}

// BenchmarkMineBoundaryLatency injects a 2 ms per-request delay at the
// transport — a stand-in for real network RTT to the remote services the
// paper mined — and shows the sweep overlapping those waits.
func BenchmarkMineBoundaryLatency(b *testing.B) {
	store := populatedStore(b, 11, 120)
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			stack := newFaultableStack(b, store, nil, nil)
			stack.miner.Samples = 100
			stack.miner.Workers = workers
			rtt := httpx.Fault{Delay: 2 * time.Millisecond}
			stack.segFT.Stub(httpx.MatchAll, httpx.RandomFaults(1, 1<<15, 1.01, rtt)...)
			stack.elevFT.Stub(httpx.MatchAll, httpx.RandomFaults(1, 1<<15, 1.01, rtt)...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mined, err := stack.miner.MineBoundary(context.Background(), "WDC", cityBounds())
				if err != nil {
					b.Fatal(err)
				}
				if len(mined) == 0 {
					b.Fatal("mined nothing")
				}
			}
		})
	}
}
