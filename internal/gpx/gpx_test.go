package gpx

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"elevprivacy/internal/geo"
)

func sampleDoc() *Document {
	start := time.Date(2020, 1, 11, 8, 0, 0, 0, time.UTC)
	return &Document{
		Creator: "elevprivacy-test",
		Name:    "morning run",
		Time:    start,
		Tracks: []Track{{
			Name: "morning run",
			Type: "run",
			Segments: []Segment{{
				Points: []Point{
					{LatLng: geo.LatLng{Lat: 38.9001, Lng: -77.0301}, ElevationMeters: 52.5, HasElevation: true, Time: start},
					{LatLng: geo.LatLng{Lat: 38.9011, Lng: -77.0292}, ElevationMeters: 54.0, HasElevation: true, Time: start.Add(10 * time.Second)},
					{LatLng: geo.LatLng{Lat: 38.9022, Lng: -77.0285}, HasElevation: false, Time: start.Add(20 * time.Second)},
				},
			}},
		}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	doc := sampleDoc()
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}

	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Creator != doc.Creator || back.Name != doc.Name {
		t.Errorf("metadata = %q/%q, want %q/%q", back.Creator, back.Name, doc.Creator, doc.Name)
	}
	if !back.Time.Equal(doc.Time) {
		t.Errorf("time = %v, want %v", back.Time, doc.Time)
	}
	if len(back.Tracks) != 1 || len(back.Tracks[0].Segments) != 1 {
		t.Fatalf("structure lost: %+v", back)
	}
	pts := back.Tracks[0].Segments[0].Points
	orig := doc.Tracks[0].Segments[0].Points
	if len(pts) != len(orig) {
		t.Fatalf("point count = %d, want %d", len(pts), len(orig))
	}
	for i := range pts {
		if math.Abs(pts[i].Lat-orig[i].Lat) > 1e-9 || math.Abs(pts[i].Lng-orig[i].Lng) > 1e-9 {
			t.Errorf("point %d position %v, want %v", i, pts[i].LatLng, orig[i].LatLng)
		}
		if pts[i].HasElevation != orig[i].HasElevation {
			t.Errorf("point %d HasElevation = %v, want %v", i, pts[i].HasElevation, orig[i].HasElevation)
		}
		if orig[i].HasElevation && math.Abs(pts[i].ElevationMeters-orig[i].ElevationMeters) > 1e-9 {
			t.Errorf("point %d elevation %f, want %f", i, pts[i].ElevationMeters, orig[i].ElevationMeters)
		}
		if !pts[i].Time.Equal(orig[i].Time) {
			t.Errorf("point %d time %v, want %v", i, pts[i].Time, orig[i].Time)
		}
	}
}

func TestWriteProducesGPX11(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDoc()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`<?xml`,
		`version="1.1"`,
		`xmlns="http://www.topografix.com/GPX/1/1"`,
		`<trkpt lat="38.9001" lon="-77.0301">`,
		`<ele>52.5</ele>`,
		`<time>2020-01-11T08:00:00Z</time>`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The elevation-less third point must not carry an <ele> element.
	if strings.Count(s, "<ele>") != 2 {
		t.Errorf("expected exactly 2 <ele> elements:\n%s", s)
	}
}

func TestReadRejectsInvalidPosition(t *testing.T) {
	const bad = `<?xml version="1.0"?>
<gpx version="1.1" creator="x"><trk><trkseg>
<trkpt lat="97.0" lon="0.0"></trkpt>
</trkseg></trk></gpx>`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("latitude 97 accepted")
	}
}

func TestReadRejectsBadTimestamp(t *testing.T) {
	const bad = `<?xml version="1.0"?>
<gpx version="1.1" creator="x"><trk><trkseg>
<trkpt lat="1.0" lon="1.0"><time>yesterday</time></trkpt>
</trkseg></trk></gpx>`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("malformed timestamp accepted")
	}
}

func TestReadRejectsMalformedXML(t *testing.T) {
	if _, err := Read(strings.NewReader("<gpx><trk>")); err == nil {
		t.Error("truncated XML accepted")
	}
}

func TestReadForeignCreatorGPX(t *testing.T) {
	// A minimal file as another app would emit it: no metadata, bare points.
	const foreign = `<gpx version="1.1" creator="Garmin">
<trk><type>ride</type><trkseg>
<trkpt lat="40.0" lon="-74.0"><ele>12</ele></trkpt>
<trkpt lat="40.001" lon="-74.001"><ele>13.25</ele></trkpt>
</trkseg></trk></gpx>`
	doc, err := Read(strings.NewReader(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Creator != "Garmin" {
		t.Errorf("creator = %q", doc.Creator)
	}
	if doc.Tracks[0].Type != "ride" {
		t.Errorf("type = %q", doc.Tracks[0].Type)
	}
	elevs := doc.Tracks[0].Elevations()
	if len(elevs) != 2 || elevs[1] != 13.25 {
		t.Errorf("elevations = %v", elevs)
	}
}

func TestTrackPathAndElevations(t *testing.T) {
	trk := Track{Segments: []Segment{
		{Points: []Point{
			{LatLng: geo.LatLng{Lat: 1, Lng: 2}, ElevationMeters: 10, HasElevation: true},
		}},
		{Points: []Point{
			{LatLng: geo.LatLng{Lat: 3, Lng: 4}},
		}},
	}}
	path := trk.Path()
	if len(path) != 2 || path[1] != (geo.LatLng{Lat: 3, Lng: 4}) {
		t.Errorf("Path = %v", path)
	}
	elevs := trk.Elevations()
	if len(elevs) != 2 || elevs[0] != 10 || elevs[1] != 0 {
		t.Errorf("Elevations = %v", elevs)
	}
}

func TestFromActivity(t *testing.T) {
	path := geo.Path{{Lat: 1, Lng: 1}, {Lat: 1.001, Lng: 1.001}}
	start := time.Date(2020, 3, 1, 7, 0, 0, 0, time.UTC)

	doc, err := FromActivity("act", "run", path, []float64{5, 6}, start, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	pts := doc.Tracks[0].Segments[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if !pts[1].Time.Equal(start.Add(2500 * time.Millisecond)) {
		t.Errorf("second timestamp = %v", pts[1].Time)
	}
	if !pts[0].HasElevation || pts[0].ElevationMeters != 5 {
		t.Errorf("first elevation = %+v", pts[0])
	}

	if _, err := FromActivity("bad", "run", path, []float64{1}, start, 1); err == nil {
		t.Error("mismatched elevation length accepted")
	}

	// nil elevations: no <ele> elements at all.
	doc, err = FromActivity("bare", "run", path, nil, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Tracks[0].Segments[0].Points[0].HasElevation {
		t.Error("nil elevations should produce HasElevation=false")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(rawLat, rawLng []float64, eleSeed int64) bool {
		n := len(rawLat)
		if len(rawLng) < n {
			n = len(rawLng)
		}
		if n > 40 {
			n = 40
		}
		path := make(geo.Path, 0, n)
		elevs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			lat := math.Mod(rawLat[i], 90)
			lng := math.Mod(rawLng[i], 180)
			if math.IsNaN(lat) || math.IsNaN(lng) {
				return true // skip degenerate random input
			}
			path = append(path, geo.LatLng{Lat: lat, Lng: lng})
			elevs = append(elevs, float64((eleSeed+int64(i)*13)%9000)/3)
		}
		doc, err := FromActivity("p", "run", path, elevs, time.Time{}, 0)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, doc); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		gotPath := back.Tracks[0].Path()
		gotElev := back.Tracks[0].Elevations()
		if len(gotPath) != n || len(gotElev) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(gotPath[i].Lat-path[i].Lat) > 1e-9 ||
				math.Abs(gotPath[i].Lng-path[i].Lng) > 1e-9 ||
				math.Abs(gotElev[i]-elevs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
