// Package gpx reads and writes the GPS Exchange Format (GPX 1.1), the
// intermediate format the paper converts every collected activity into
// before labeling (§III-A1).
//
// Only the track subset the pipeline needs is modeled: tracks, track
// segments, and track points with elevation and time.
package gpx

import (
	"encoding/xml"
	"fmt"
	"io"
	"time"

	"elevprivacy/internal/geo"
)

// Document is a GPX file: metadata plus one or more tracks.
type Document struct {
	// Creator identifies the producing application.
	Creator string
	// Name is the optional document-level name.
	Name string
	// Time is the optional document timestamp.
	Time time.Time
	// Tracks holds the recorded activities.
	Tracks []Track
}

// Track is a named recorded activity.
type Track struct {
	// Name labels the activity.
	Name string
	// Type is the activity type (run, ride, hike...).
	Type string
	// Segments holds continuous spans of recording.
	Segments []Segment
}

// Segment is a continuous sequence of track points.
type Segment struct {
	Points []Point
}

// Point is a single GPS fix.
type Point struct {
	// LatLng is the horizontal position.
	geo.LatLng
	// ElevationMeters is the recorded elevation. NaN is never used; missing
	// elevations are written/read as zero with HasElevation false.
	ElevationMeters float64
	// HasElevation records whether the <ele> element was present.
	HasElevation bool
	// Time is the fix timestamp; zero when absent.
	Time time.Time
}

// Path flattens all points of all segments of the track into a geo.Path.
func (t Track) Path() geo.Path {
	var out geo.Path
	for _, s := range t.Segments {
		for _, p := range s.Points {
			out = append(out, p.LatLng)
		}
	}
	return out
}

// Elevations returns the elevation series of the track, in recording order.
// Points without elevation contribute 0.
func (t Track) Elevations() []float64 {
	var out []float64
	for _, s := range t.Segments {
		for _, p := range s.Points {
			out = append(out, p.ElevationMeters)
		}
	}
	return out
}

// --- XML wire representation ---

type xmlGPX struct {
	XMLName  xml.Name     `xml:"gpx"`
	Version  string       `xml:"version,attr"`
	Creator  string       `xml:"creator,attr"`
	Xmlns    string       `xml:"xmlns,attr,omitempty"`
	Metadata *xmlMetadata `xml:"metadata,omitempty"`
	Tracks   []xmlTrack   `xml:"trk"`
}

type xmlMetadata struct {
	Name string `xml:"name,omitempty"`
	Time string `xml:"time,omitempty"`
}

type xmlTrack struct {
	Name     string       `xml:"name,omitempty"`
	Type     string       `xml:"type,omitempty"`
	Segments []xmlSegment `xml:"trkseg"`
}

type xmlSegment struct {
	Points []xmlPoint `xml:"trkpt"`
}

type xmlPoint struct {
	Lat  float64  `xml:"lat,attr"`
	Lon  float64  `xml:"lon,attr"`
	Ele  *float64 `xml:"ele,omitempty"`
	Time string   `xml:"time,omitempty"`
}

// Write serializes the document as GPX 1.1 XML.
func Write(w io.Writer, doc *Document) error {
	out := xmlGPX{
		Version: "1.1",
		Creator: doc.Creator,
		Xmlns:   "http://www.topografix.com/GPX/1/1",
	}
	if doc.Name != "" || !doc.Time.IsZero() {
		md := &xmlMetadata{Name: doc.Name}
		if !doc.Time.IsZero() {
			md.Time = doc.Time.UTC().Format(time.RFC3339)
		}
		out.Metadata = md
	}
	for _, trk := range doc.Tracks {
		xt := xmlTrack{Name: trk.Name, Type: trk.Type}
		for _, seg := range trk.Segments {
			xs := xmlSegment{Points: make([]xmlPoint, 0, len(seg.Points))}
			for _, p := range seg.Points {
				xp := xmlPoint{Lat: p.Lat, Lon: p.Lng}
				if p.HasElevation {
					ele := p.ElevationMeters
					xp.Ele = &ele
				}
				if !p.Time.IsZero() {
					xp.Time = p.Time.UTC().Format(time.RFC3339)
				}
				xs.Points = append(xs.Points, xp)
			}
			xt.Segments = append(xt.Segments, xs)
		}
		out.Tracks = append(out.Tracks, xt)
	}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return fmt.Errorf("gpx: writing header: %w", err)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("gpx: encoding: %w", err)
	}
	// Encoder.Encode does not emit a trailing newline.
	_, err := io.WriteString(w, "\n")
	return err
}

// Read parses a GPX document, validating coordinates and timestamps.
func Read(r io.Reader) (*Document, error) {
	var in xmlGPX
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("gpx: decoding: %w", err)
	}

	doc := &Document{Creator: in.Creator}
	if in.Metadata != nil {
		doc.Name = in.Metadata.Name
		if in.Metadata.Time != "" {
			ts, err := time.Parse(time.RFC3339, in.Metadata.Time)
			if err != nil {
				return nil, fmt.Errorf("gpx: metadata time: %w", err)
			}
			doc.Time = ts
		}
	}

	for ti, xt := range in.Tracks {
		trk := Track{Name: xt.Name, Type: xt.Type}
		for si, xs := range xt.Segments {
			seg := Segment{Points: make([]Point, 0, len(xs.Points))}
			for pi, xp := range xs.Points {
				pos := geo.LatLng{Lat: xp.Lat, Lng: xp.Lon}
				if !pos.Valid() {
					return nil, fmt.Errorf("gpx: track %d segment %d point %d: invalid position %v", ti, si, pi, pos)
				}
				p := Point{LatLng: pos}
				if xp.Ele != nil {
					p.ElevationMeters = *xp.Ele
					p.HasElevation = true
				}
				if xp.Time != "" {
					ts, err := time.Parse(time.RFC3339, xp.Time)
					if err != nil {
						return nil, fmt.Errorf("gpx: track %d segment %d point %d: %w", ti, si, pi, err)
					}
					p.Time = ts
				}
				seg.Points = append(seg.Points, p)
			}
			trk.Segments = append(trk.Segments, seg)
		}
		doc.Tracks = append(doc.Tracks, trk)
	}
	return doc, nil
}

// FromActivity builds a single-track document from a path and its elevation
// series. Elevations may be nil (no <ele> elements) or len(path) long.
// Timestamps, when start is non-zero, are spaced stepSeconds apart.
func FromActivity(name, actType string, path geo.Path, elevations []float64, start time.Time, stepSeconds float64) (*Document, error) {
	if len(elevations) != 0 && len(elevations) != len(path) {
		return nil, fmt.Errorf("gpx: %d elevations for %d points", len(elevations), len(path))
	}
	seg := Segment{Points: make([]Point, 0, len(path))}
	for i, pos := range path {
		p := Point{LatLng: pos}
		if len(elevations) != 0 {
			p.ElevationMeters = elevations[i]
			p.HasElevation = true
		}
		if !start.IsZero() {
			p.Time = start.Add(time.Duration(float64(i) * stepSeconds * float64(time.Second)))
		}
		seg.Points = append(seg.Points, p)
	}
	return &Document{
		Creator: "elevprivacy",
		Name:    name,
		Time:    start,
		Tracks: []Track{{
			Name:     name,
			Type:     actType,
			Segments: []Segment{seg},
		}},
	}, nil
}
