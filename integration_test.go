package elevprivacy_test

// Integration test: the complete pipeline of the paper's Fig. 2/Fig. 4
// over real HTTP — populate a fitness service with user-created segments,
// grid-mine two cities through the ExploreSegments API, fetch elevation
// profiles from the elevation API, build the labeled dataset, and run the
// location-inference attack.

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"elevprivacy"
	"elevprivacy/internal/dataset"
	"elevprivacy/internal/elevsvc"
	"elevprivacy/internal/geo"
	"elevprivacy/internal/segments"
	"elevprivacy/internal/terrain"
)

// multiCitySource routes elevation queries to the containing city terrain.
type multiCitySource struct {
	cities []*terrain.City
	fields []*terrain.Terrain
}

func (m *multiCitySource) ElevationAt(p geo.LatLng) (float64, error) {
	for i, c := range m.cities {
		if c.Bounds.Expand(0.5, 0.5).Contains(p) {
			return m.fields[i].ElevationAt(p)
		}
	}
	// Fall back to the first city's field; queries only come from within
	// the mined boundaries in this test.
	return m.fields[0].ElevationAt(p)
}

func TestEndToEndMiningAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end mining is slow")
	}

	world := terrain.World()
	var cities []*terrain.City
	for _, ab := range []string{"CS", "MIA"} { // maximally separable pair
		c, err := terrain.CityByName(world, ab)
		if err != nil {
			t.Fatal(err)
		}
		cities = append(cities, c)
	}

	// Fitness service: user-created segments in both cities.
	store := segments.NewStore()
	rng := rand.New(rand.NewSource(42))
	for _, c := range cities {
		if err := store.Populate(c.Bounds, 120, c.Abbrev, segments.DefaultPopulateConfig(), rng); err != nil {
			t.Fatal(err)
		}
	}

	src := &multiCitySource{cities: cities}
	for _, c := range cities {
		tr, err := c.Terrain()
		if err != nil {
			t.Fatal(err)
		}
		src.fields = append(src.fields, tr)
	}

	segSrv := httptest.NewServer(segments.NewServer(store, segments.WithLogf(t.Logf)).Handler())
	defer segSrv.Close()
	elevSrv := httptest.NewServer(elevsvc.NewServer(src, elevsvc.WithLogf(t.Logf)).Handler())
	defer elevSrv.Close()

	// The paper's grid miner, over the wire.
	miner := segments.NewMiner(
		segments.NewClient(segSrv.URL, segSrv.Client()),
		elevsvc.NewClient(elevSrv.URL, elevSrv.Client()),
	)
	miner.Samples = 60
	miner.GridRows, miner.GridCols = 10, 10

	classes := map[string]geo.BBox{}
	for _, c := range cities {
		classes[c.Name] = c.Bounds
	}
	mined, err := miner.MineClasses(context.Background(), classes)
	if err != nil {
		t.Fatal(err)
	}

	d := (*elevprivacy.Dataset)(dataset.FromMined(mined))
	counts := d.CountByLabel()
	t.Logf("mined dataset: %v", counts)
	for _, c := range cities {
		if counts[c.Name] < 20 {
			t.Fatalf("city %s mined only %d segments", c.Name, counts[c.Name])
		}
	}

	// Attack the mined dataset.
	m, err := elevprivacy.CrossValidateText(d,
		elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierSVM), 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("end-to-end mined-data attack accuracy: %.3f", m.Accuracy)
	if m.Accuracy < 0.9 {
		t.Errorf("CS-vs-Miami from mined data should be nearly perfect, got %.3f", m.Accuracy)
	}

	// And a trained attack can place a fresh profile mined from one city.
	attack, err := elevprivacy.TrainTextAttack(d,
		elevprivacy.DefaultTextAttackConfig(elevprivacy.ClassifierSVM))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := attack.PredictLocation(mined[0].Elevations)
	if err != nil {
		t.Fatal(err)
	}
	if pred != mined[0].Label {
		t.Errorf("fresh profile predicted %q, actual %q", pred, mined[0].Label)
	}
}
